// Semantic verification of the reorderability property tables.
//
// Every `true` entry of the assoc / l-asscom / r-asscom tables
// (conflict/operator_properties.cc) is an equivalence claim about
// null-rejecting-predicate expressions. This suite *executes* both sides
// of each claimed identity on randomized three-relation inputs (with
// NULLs, duplicates and empty inputs) and compares the results as bags —
// a wrong `true` entry here would mean the conflict detector admits
// incorrect reorderings.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "conflict/operator_properties.h"
#include "exec/operators.h"

namespace eadp {
namespace {

/// e1(g1, j1, k1), e2(j2, k2), e3(j3, k3): random with NULLs + duplicates.
Table RandomTable(uint64_t seed, std::vector<std::string> cols) {
  Rng rng(seed);
  Table t(cols);
  int rows = static_cast<int>(rng.UniformInt(0, 8));
  for (int i = 0; i < rows; ++i) {
    Row row;
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      row.push_back(rng.Bernoulli(0.12)
                        ? Value::Null()
                        : Value::Int(rng.UniformInt(0, 3)));
    }
    t.AddRow(std::move(row));
  }
  return t;
}

/// Applies operator `kind` with predicate `l = r`; groupjoins count their
/// partners into `gj_out`.
Table Apply(OpKind kind, const Table& a, const Table& b,
            const std::string& l, const std::string& r,
            const std::string& gj_out) {
  ExecPredicate pred = {{l, r, CmpOp::kEq}};
  switch (kind) {
    case OpKind::kJoin:
      return InnerJoin(a, b, pred);
    case OpKind::kLeftSemi:
      return LeftSemiJoin(a, b, pred);
    case OpKind::kLeftAnti:
      return LeftAntiJoin(a, b, pred);
    case OpKind::kLeftOuter:
      return LeftOuterJoin(a, b, pred);
    case OpKind::kFullOuter:
      return FullOuterJoin(a, b, pred);
    case OpKind::kGroupJoin:
      return GroupJoin(a, b, pred,
                       {ExecAggregate::Simple(gj_out, AggKind::kCountStar)});
  }
  return Table();
}

const OpKind kAllOps[] = {OpKind::kJoin,      OpKind::kLeftSemi,
                          OpKind::kLeftAnti,  OpKind::kLeftOuter,
                          OpKind::kFullOuter, OpKind::kGroupJoin};

class PropertyTableTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Table E1() const { return RandomTable(GetParam() * 7 + 1, {"g1", "j1", "k1"}); }
  Table E2() const { return RandomTable(GetParam() * 11 + 2, {"j2", "k2"}); }
  Table E3() const { return RandomTable(GetParam() * 13 + 3, {"j3", "k3"}); }
};

TEST_P(PropertyTableTest, AssocEntriesHoldOnData) {
  // assoc(a, b): (e1 a_{j1=j2} e2) b_{k2=j3} e3 ≡ e1 a (e2 b e3).
  for (OpKind a : kAllOps) {
    for (OpKind b : kAllOps) {
      if (!OpAssoc(a, b)) continue;
      Table e1 = E1();
      Table e2 = E2();
      Table e3 = E3();
      Table lhs = Apply(b, Apply(a, e1, e2, "j1", "j2", "za"), e3, "k2", "j3",
                        "zb");
      Table rhs = Apply(a, e1, Apply(b, e2, e3, "k2", "j3", "zb"), "j1", "j2",
                        "za");
      EXPECT_TRUE(Table::BagEquals(lhs, rhs))
          << "assoc(" << OpKindName(a) << "," << OpKindName(b) << ") seed "
          << GetParam() << "\nlhs:\n"
          << lhs.ToString() << "rhs:\n"
          << rhs.ToString();
    }
  }
}

TEST_P(PropertyTableTest, LeftAsscomEntriesHoldOnData) {
  // l-asscom(a, b): (e1 a_{j1=j2} e2) b_{k1=j3} e3
  //               ≡ (e1 b_{k1=j3} e3) a_{j1=j2} e2.
  for (OpKind a : kAllOps) {
    for (OpKind b : kAllOps) {
      if (!OpLeftAsscom(a, b)) continue;
      Table e1 = E1();
      Table e2 = E2();
      Table e3 = E3();
      Table lhs = Apply(b, Apply(a, e1, e2, "j1", "j2", "za"), e3, "k1", "j3",
                        "zb");
      Table rhs = Apply(a, Apply(b, e1, e3, "k1", "j3", "zb"), e2, "j1", "j2",
                        "za");
      EXPECT_TRUE(Table::BagEquals(lhs, rhs))
          << "l-asscom(" << OpKindName(a) << "," << OpKindName(b) << ") seed "
          << GetParam() << "\nlhs:\n"
          << lhs.ToString() << "rhs:\n"
          << rhs.ToString();
    }
  }
}

TEST_P(PropertyTableTest, RightAsscomEntriesHoldOnData) {
  // r-asscom(a, b): e1 a_{j1=j3} (e2 b_{k2=k3} e3)
  //               ≡ e2 b_{k2=k3} (e1 a_{j1=j3} e3).
  for (OpKind a : kAllOps) {
    for (OpKind b : kAllOps) {
      if (!OpRightAsscom(a, b)) continue;
      Table e1 = E1();
      Table e2 = E2();
      Table e3 = E3();
      Table lhs = Apply(a, e1, Apply(b, e2, e3, "k2", "k3", "zb"), "j1", "j3",
                        "za");
      Table rhs = Apply(b, e2, Apply(a, e1, e3, "j1", "j3", "za"), "k2", "k3",
                        "zb");
      EXPECT_TRUE(Table::BagEquals(lhs, rhs))
          << "r-asscom(" << OpKindName(a) << "," << OpKindName(b) << ") seed "
          << GetParam() << "\nlhs:\n"
          << lhs.ToString() << "rhs:\n"
          << rhs.ToString();
    }
  }
}

TEST_P(PropertyTableTest, KnownFalseEntriesActuallyFailSomewhere) {
  // Sanity in the other direction (meta-test, aggregated over seeds by the
  // suite): assoc(E, B) is false in the table; on at least some inputs the
  // two nestings really do differ — recorded here for one deterministic
  // witness so the table's conservatism is justified by data.
  if (GetParam() != 0) GTEST_SKIP();
  Table e1({"j1"});
  e1.AddRow({Value::Int(1)});
  Table e2({"j2", "k2"});  // empty: the outer join pads e1
  Table e3({"j3"});
  e3.AddRow({Value::Int(2)});
  // (e1 E e2) B_{k2=j3} e3: padded row has k2 NULL -> join drops it: empty.
  Table lhs = Apply(OpKind::kJoin,
                    Apply(OpKind::kLeftOuter, e1, e2, "j1", "j2", ""), e3,
                    "k2", "j3", "");
  // e1 E (e2 B e3): right side empty -> e1 padded: one row.
  Table rhs = Apply(OpKind::kLeftOuter, e1,
                    Apply(OpKind::kJoin, e2, e3, "k2", "j3", ""), "j1", "j2",
                    "");
  EXPECT_EQ(lhs.NumRows(), 0u);
  EXPECT_EQ(rhs.NumRows(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTableTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace eadp
