// Unit coverage of the mutation harness (queries/mutation.h):
//
//   * per-operator contract — every operator either applies (mutant valid
//     under CheckSpecValid, canonical fingerprint moved) or rejects
//     cleanly (spec byte-identical), and is deterministic in
//     (spec, sub-seed);
//   * identity — the no-op mutation round-trips the fingerprint exactly,
//     including through avg canonicalization (TPC-H Q1);
//   * engine — recorded chains replay bit-identically, prefix replays
//     reproduce intermediate states;
//   * corpus format — Format/Parse round-trip, malformed lines rejected;
//   * generator growth — snowflake topology, many-attribute and
//     outer-heavy presets produce valid, decomposable seeds.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "queries/fingerprint.h"
#include "queries/mutation.h"
#include "queries/query_generator.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

std::string CanonicalOf(const QuerySpec& spec) {
  return FingerprintQuery(spec.ToQuery()).canonical;
}

/// The seed pool the operator tests sweep: mixed-operator generator
/// queries of several sizes, an outer-heavy mix, and the TPC-H skeletons
/// with interesting structure (Ex: full outer; Q1: single relation + avg;
/// Q18: groupjoin).
std::vector<QuerySpec> SeedPool() {
  std::vector<QuerySpec> pool;
  for (uint64_t seed : {1u, 7u, 23u}) {
    GeneratorOptions gen;
    gen.num_relations = 5;
    pool.push_back(QuerySpec::FromQuery(GenerateRandomQuery(gen, seed)));
  }
  pool.push_back(
      QuerySpec::FromQuery(GenerateRandomQuery(OuterHeavyOptions(6), 11)));
  {
    // Clique: operator i conjoins i equalities — the only shape in the
    // pool with multi-equality predicates (kDropPredicate candidates).
    GeneratorOptions gen;
    gen.topology = QueryTopology::kClique;
    gen.num_relations = 5;
    pool.push_back(QuerySpec::FromQuery(GenerateRandomQuery(gen, 3)));
  }
  pool.push_back(QuerySpec::FromQuery(MakeTpchEx()));
  pool.push_back(QuerySpec::FromQuery(MakeTpchQ5()));
  pool.push_back(QuerySpec::FromQuery(MakeTpchQ1()));
  pool.push_back(QuerySpec::FromQuery(MakeTpchQ18()));
  return pool;
}

TEST(MutationSpec, SeedsAreValid) {
  for (const QuerySpec& spec : SeedPool()) {
    EXPECT_TRUE(CheckSpecValid(spec).empty());
  }
}

TEST(MutationSpec, FromQueryToQueryRoundTripsFingerprint) {
  // Includes Q1: FromQuery must fold the sum/countNN avg split back into
  // kAvg so ToQuery's canonicalization reproduces the original layout.
  std::vector<Query> queries;
  queries.push_back(MakeTpchEx());
  queries.push_back(MakeTpchQ1());
  queries.push_back(MakeTpchQ3());
  queries.push_back(MakeTpchQ18());
  for (uint64_t seed : {2u, 9u}) {
    GeneratorOptions gen;
    gen.num_relations = 4;
    gen.avg_agg_probability = 0.9;  // force avg slots through the fold-back
    queries.push_back(GenerateRandomQuery(gen, seed));
  }
  for (const Query& q : queries) {
    QuerySpec spec = QuerySpec::FromQuery(q);
    EXPECT_EQ(FingerprintQuery(q).canonical, CanonicalOf(spec));
  }
}

TEST(MutationOperators, ApplyOrRejectCleanly) {
  // Every (seed, operator, sub-seed) triple: applied mutants are valid
  // with a moved fingerprint; rejected ones leave the spec byte-identical.
  std::map<MutationOp, int> applied;
  for (const QuerySpec& seed_spec : SeedPool()) {
    std::string before = CanonicalOf(seed_spec);
    for (MutationOp op : AllMutationOps()) {
      for (uint64_t sub = 0; sub < 8; ++sub) {
        QuerySpec spec = seed_spec.Clone();
        Rng rng(sub * 1315423911u + 17);
        if (ApplyMutation(op, &spec, &rng)) {
          ++applied[op];
          EXPECT_TRUE(CheckSpecValid(spec).empty())
              << MutationOpName(op) << " produced an invalid mutant";
          EXPECT_NE(CanonicalOf(spec), before)
              << MutationOpName(op) << " applied without moving the "
              << "fingerprint";
        } else {
          EXPECT_EQ(CanonicalOf(spec), before)
              << MutationOpName(op) << " rejected but touched the spec";
        }
      }
    }
  }
  // Coverage: every operator must genuinely fire somewhere in the pool.
  for (MutationOp op : AllMutationOps()) {
    EXPECT_GT(applied[op], 0)
        << MutationOpName(op) << " never applied across the seed pool";
  }
}

TEST(MutationOperators, DeterministicUnderFixedSeed) {
  for (const QuerySpec& seed_spec : SeedPool()) {
    for (MutationOp op : AllMutationOps()) {
      QuerySpec a = seed_spec.Clone();
      QuerySpec b = seed_spec.Clone();
      Rng ra(42), rb(42);
      bool applied_a = ApplyMutation(op, &a, &ra);
      bool applied_b = ApplyMutation(op, &b, &rb);
      ASSERT_EQ(applied_a, applied_b) << MutationOpName(op);
      EXPECT_EQ(CanonicalOf(a), CanonicalOf(b)) << MutationOpName(op);
    }
  }
}

TEST(MutationOperators, IdentityKeepsFingerprint) {
  for (const QuerySpec& seed_spec : SeedPool()) {
    QuerySpec spec = seed_spec.Clone();
    Rng rng(1);
    EXPECT_TRUE(ApplyMutation(MutationOp::kIdentity, &spec, &rng));
    EXPECT_EQ(CanonicalOf(spec), CanonicalOf(seed_spec));
  }
}

TEST(MutationOperators, NamesRoundTrip) {
  for (MutationOp op : AllMutationOps()) {
    MutationOp parsed;
    ASSERT_TRUE(ParseMutationOp(MutationOpName(op), &parsed))
        << MutationOpName(op);
    EXPECT_EQ(parsed, op);
  }
  MutationOp op;
  EXPECT_FALSE(ParseMutationOp("swap-join-kinds", &op));
  EXPECT_FALSE(ParseMutationOp("", &op));
}

TEST(MutationEngine, ChainsReplayBitIdentically) {
  for (const QuerySpec& seed_spec : SeedPool()) {
    MutationEngine engine(seed_spec.Clone(), 99);
    int steps = 0;
    for (int i = 0; i < 6; ++i) steps += engine.Step() ? 1 : 0;
    ASSERT_EQ(static_cast<size_t>(steps), engine.chain().size());
    if (steps == 0) continue;  // fully saturated seed (possible for Q1)
    QuerySpec replayed =
        MutationEngine::Replay(seed_spec, engine.chain(), engine.chain().size());
    EXPECT_EQ(CanonicalOf(replayed), CanonicalOf(engine.spec()));
    // Prefix replay reproduces the intermediate state: re-driving a fresh
    // engine over the prefix must agree (this is what divergence
    // minimization leans on).
    size_t prefix = engine.chain().size() / 2;
    QuerySpec mid = MutationEngine::Replay(seed_spec, engine.chain(), prefix);
    EXPECT_TRUE(CheckSpecValid(mid).empty());
  }
}

TEST(MutationEngine, SameSeedSameChain) {
  QuerySpec seed_spec = SeedPool()[0].Clone();
  MutationEngine a(seed_spec.Clone(), 5), b(seed_spec.Clone(), 5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(a.Step(), b.Step());
  }
  ASSERT_EQ(a.chain().size(), b.chain().size());
  for (size_t i = 0; i < a.chain().size(); ++i) {
    EXPECT_EQ(a.chain()[i].op, b.chain()[i].op);
    EXPECT_EQ(a.chain()[i].seed, b.chain()[i].seed);
  }
  EXPECT_EQ(CanonicalOf(a.spec()), CanonicalOf(b.spec()));
}

TEST(CorpusFormat, RoundTrips) {
  CorpusEntry entry;
  entry.seed.kind = "gen";
  entry.seed.topology = QueryTopology::kSnowflake;
  entry.seed.num_relations = 10;
  entry.seed.preset = "manyattr";
  entry.seed.seed = 123456789;
  entry.chain.push_back({MutationOp::kSwapJoinKind, 1});
  entry.chain.push_back({MutationOp::kRotateSubtree, 0xffffffffffffffffull});

  CorpusEntry parsed;
  std::string error;
  ASSERT_TRUE(ParseCorpusEntry(FormatCorpusEntry(entry), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.seed.kind, entry.seed.kind);
  EXPECT_EQ(parsed.seed.topology, entry.seed.topology);
  EXPECT_EQ(parsed.seed.num_relations, entry.seed.num_relations);
  EXPECT_EQ(parsed.seed.preset, entry.seed.preset);
  EXPECT_EQ(parsed.seed.seed, entry.seed.seed);
  ASSERT_EQ(parsed.chain.size(), entry.chain.size());
  for (size_t i = 0; i < entry.chain.size(); ++i) {
    EXPECT_EQ(parsed.chain[i].op, entry.chain[i].op);
    EXPECT_EQ(parsed.chain[i].seed, entry.chain[i].seed);
  }

  CorpusEntry tpch;
  tpch.seed.kind = "tpch";
  tpch.seed.tpch = "q18";
  tpch.chain.push_back({MutationOp::kToggleGroupJoin, 7});
  ASSERT_TRUE(ParseCorpusEntry(FormatCorpusEntry(tpch), &parsed, &error));
  EXPECT_EQ(parsed.seed.tpch, "q18");
}

TEST(CorpusFormat, RejectsMalformedLines) {
  CorpusEntry entry;
  std::string error;
  // Comments and blanks: false with no error.
  EXPECT_FALSE(ParseCorpusEntry("# comment", &entry, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(ParseCorpusEntry("", &entry, &error));
  EXPECT_TRUE(error.empty());
  // Malformed: false with an error message.
  EXPECT_FALSE(ParseCorpusEntry("gen chain five default 1 :", &entry, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ParseCorpusEntry("gen warp 5 default 1 : identity:1", &entry, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseCorpusEntry("tpch q99 :", &entry, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ParseCorpusEntry("gen chain 5 default 1 : frobnicate:1", &entry, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ParseCorpusEntry("gen chain 5 default 1 no-colon", &entry, &error));
  EXPECT_FALSE(error.empty());
}

TEST(GeneratorGrowth, SnowflakeTopologyIsValid) {
  for (int n : {4, 13, 40}) {
    GeneratorOptions gen;
    gen.topology = QueryTopology::kSnowflake;
    gen.num_relations = n;
    Query q = GenerateRandomQuery(gen, 3);
    EXPECT_EQ(q.NumRelations(), n);
    EXPECT_TRUE(CheckSpecValid(QuerySpec::FromQuery(q)).empty());
  }
  EXPECT_STREQ(TopologyName(QueryTopology::kSnowflake), "snowflake");
}

TEST(GeneratorGrowth, ManyAttributePresetWidensSchema) {
  Query q = GenerateRandomQuery(
      ManyAttributeOptions(QueryTopology::kSnowflake, 10), 5);
  // 1 join attribute + 3 extras per relation.
  EXPECT_EQ(q.catalog().num_attributes(), 40);
  EXPECT_TRUE(CheckSpecValid(QuerySpec::FromQuery(q)).empty());
}

TEST(GeneratorGrowth, ManyAttributeDefaultKeepsHistoricalSchema) {
  // extra_attrs_per_relation = 0 must reproduce the pre-existing draw
  // sequence exactly: seeded structured workloads are pinned elsewhere.
  GeneratorOptions gen;
  gen.topology = QueryTopology::kChain;
  gen.num_relations = 6;
  Query q = GenerateRandomQuery(gen, 17);
  EXPECT_EQ(q.catalog().num_attributes(), 6);
}

TEST(GeneratorGrowth, OuterHeavyPresetIsValidAndOuterHeavy) {
  int non_inner = 0, total = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Query q = GenerateRandomQuery(OuterHeavyOptions(6), seed);
    EXPECT_TRUE(CheckSpecValid(QuerySpec::FromQuery(q)).empty());
    for (const QueryOp& op : q.ops()) {
      ++total;
      if (op.kind != OpKind::kJoin) ++non_inner;
    }
  }
  // w_join = 0.15: the mix must actually be dominated by non-inner
  // operators (loose bound; 20 seeds × 5 operators).
  EXPECT_GT(non_inner * 2, total);
}

TEST(MaterializeSeedTest, AllSeedKindsMaterialize) {
  for (const char* name : {"ex", "q1", "q3", "q5", "q10", "q18"}) {
    FuzzSeed seed;
    seed.kind = "tpch";
    seed.tpch = name;
    EXPECT_TRUE(
        CheckSpecValid(QuerySpec::FromQuery(MaterializeSeed(seed))).empty())
        << name;
  }
  for (const char* preset : {"default", "inner", "outer"}) {
    FuzzSeed seed;
    seed.kind = "gen";
    seed.preset = preset;
    seed.num_relations = 5;
    seed.seed = 3;
    EXPECT_TRUE(
        CheckSpecValid(QuerySpec::FromQuery(MaterializeSeed(seed))).empty())
        << preset;
  }
  FuzzSeed many;
  many.kind = "gen";
  many.preset = "manyattr";
  many.topology = QueryTopology::kStar;
  many.num_relations = 8;
  many.seed = 3;
  EXPECT_TRUE(
      CheckSpecValid(QuerySpec::FromQuery(MaterializeSeed(many))).empty());
}

}  // namespace
}  // namespace eadp
