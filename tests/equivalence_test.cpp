// Property tests for the eager-aggregation equivalences (Fig. 3).
//
// For every binary operator ◦ and every aggregate mix, the four OpTrees
// variants — T1 ◦ T2, Γ(T1) ◦ T2, T1 ◦ Γ(T2), Γ(T1) ◦ Γ(T2), each with the
// top-level finalization — are built with the library's own rewriting
// machinery and executed against randomized data (with NULLs, duplicates
// and empty inputs). Each variant must produce the canonical result. This
// covers Eqvs. 10–36 (inner join, left outerjoin with defaults, full
// outerjoin with defaults), 37/38 (semijoin, antijoin) and 39–41
// (groupjoin), including the count(*) special case S1, the ⊗ adjustment,
// and the F({⊥}) default vectors.

#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.h"

namespace eadp {
namespace {

using EqvParam = std::tuple<OpKind, AggMix, int /*seed*/>;

class EquivalenceTest : public ::testing::TestWithParam<EqvParam> {};

TEST_P(EquivalenceTest, AllOpTreesVariantsMatchCanonical) {
  auto [kind, mix, seed] = GetParam();
  TwoRelSpec spec;
  spec.kind = kind;
  spec.mix = mix;
  // Vary key declarations with the seed to also exercise the Eqv. 42 path.
  spec.key_on_r0 = (seed % 2) == 0;
  spec.key_on_r1 = (seed % 3) == 0;
  Query query = MakeTwoRelQuery(spec);

  ConflictDetector conflicts(query);
  PlanBuilder builder(&query, &conflicts);
  PlanPtr t0 = builder.MakeScan(0);
  PlanPtr t1 = builder.MakeScan(1);
  CrossingOps crossing =
      builder.FindCrossingOps(RelSet::Single(0), RelSet::Single(1));
  ASSERT_TRUE(crossing.valid);
  std::vector<PlanPtr> trees;
  if (crossing.swap) {
    builder.OpTrees(t1, t0, crossing, &trees);
  } else {
    builder.OpTrees(t0, t1, crossing, &trees);
  }
  ASSERT_FALSE(trees.empty());

  DataOptions data_options;
  data_options.max_rows = 9;
  Database db = GenerateDatabase(query, static_cast<uint64_t>(seed) * 7 + 1,
                                 data_options);

  for (const PlanPtr& tree : trees) {
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(tree, query, db, &message)) << message;
  }
}

TEST_P(EquivalenceTest, EagerVariantsAreActuallyGenerated) {
  // Meta-test: for decomposable mixes on an inner join without key
  // declarations, at least the two one-sided pushdowns must appear —
  // otherwise the suite above would be vacuous.
  auto [kind, mix, seed] = GetParam();
  if (kind != OpKind::kJoin || mix == AggMix::kDistinctRight) {
    GTEST_SKIP();
  }
  (void)seed;
  TwoRelSpec spec;
  spec.kind = kind;
  spec.mix = mix;
  Query query = MakeTwoRelQuery(spec);
  ConflictDetector conflicts(query);
  PlanBuilder builder(&query, &conflicts);
  PlanPtr t0 = builder.MakeScan(0);
  PlanPtr t1 = builder.MakeScan(1);
  CrossingOps crossing =
      builder.FindCrossingOps(RelSet::Single(0), RelSet::Single(1));
  ASSERT_TRUE(crossing.valid);
  std::vector<PlanPtr> trees;
  builder.OpTrees(t0, t1, crossing, &trees);
  EXPECT_EQ(trees.size(), 4u);
}

std::string EqvParamName(const ::testing::TestParamInfo<EqvParam>& info) {
  std::string name = OpKindName(std::get<0>(info.param));
  name += "_mix";
  name += std::to_string(static_cast<int>(std::get<1>(info.param)));
  name += "_seed";
  name += std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, EquivalenceTest,
    ::testing::Combine(
        ::testing::Values(OpKind::kJoin, OpKind::kLeftOuter,
                          OpKind::kFullOuter, OpKind::kLeftSemi,
                          OpKind::kLeftAnti, OpKind::kGroupJoin),
        ::testing::Values(AggMix::kCountOnly, AggMix::kSumBoth,
                          AggMix::kMinMax, AggMix::kCountAttr,
                          AggMix::kDistinctRight, AggMix::kAvgLeft),
        ::testing::Range(0, 8)),
    EqvParamName);

TEST(EquivalenceEdgeCases, EmptyLeftInput) {
  TwoRelSpec spec;
  spec.kind = OpKind::kFullOuter;
  spec.mix = AggMix::kSumBoth;
  Query query = MakeTwoRelQuery(spec);
  ConflictDetector conflicts(query);
  PlanBuilder builder(&query, &conflicts);
  PlanPtr t0 = builder.MakeScan(0);
  PlanPtr t1 = builder.MakeScan(1);
  CrossingOps crossing =
      builder.FindCrossingOps(RelSet::Single(0), RelSet::Single(1));
  ASSERT_TRUE(crossing.valid);
  std::vector<PlanPtr> trees;
  builder.OpTrees(t0, t1, crossing, &trees);

  DataOptions options;
  options.min_rows = 0;
  options.max_rows = 0;  // R0 empty is possible; force with several seeds
  Database db = GenerateDatabase(query, 3, options);
  // Make only the right side non-empty.
  options.min_rows = 4;
  options.max_rows = 6;
  Database db2 = GenerateDatabase(query, 4, options);
  db.tables[1] = db2.tables[1];

  for (const PlanPtr& tree : trees) {
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(tree, query, db, &message)) << message;
  }
}

TEST(EquivalenceEdgeCases, GroupingOnBothSidesOfOuterJoinWithAllNullJoinKeys) {
  TwoRelSpec spec;
  spec.kind = OpKind::kLeftOuter;
  spec.mix = AggMix::kSumBoth;
  Query query = MakeTwoRelQuery(spec);
  ConflictDetector conflicts(query);
  PlanBuilder builder(&query, &conflicts);
  PlanPtr t0 = builder.MakeScan(0);
  PlanPtr t1 = builder.MakeScan(1);
  CrossingOps crossing =
      builder.FindCrossingOps(RelSet::Single(0), RelSet::Single(1));
  std::vector<PlanPtr> trees;
  builder.OpTrees(t0, t1, crossing, &trees);

  DataOptions options;
  options.min_rows = 3;
  options.max_rows = 6;
  options.null_probability = 1.0;  // every non-key column NULL
  Database db = GenerateDatabase(query, 11, options);
  for (const PlanPtr& tree : trees) {
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(tree, query, db, &message)) << message;
  }
}

}  // namespace
}  // namespace eadp
