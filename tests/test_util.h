// Shared helpers for optimizer correctness tests.

#ifndef EADP_TESTS_TEST_UTIL_H_
#define EADP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/query.h"
#include "conflict/conflict_detector.h"
#include "exec/plan_executor.h"
#include "plangen/op_trees.h"
#include "plangen/plangen.h"
#include "queries/data_generator.h"

namespace eadp {

// ---------------------------------------------------------------------------
// Wall-clock pin gating, shared by every suite that asserts a timing
// budget. Wall-clock assertions only hold on optimized, un-instrumented
// builds: sanitizers slow the optimizer by an order of magnitude, and -O0
// (the CI Debug matrix legs) by ~2x — enough to breach e.g. the 100 ms pin
// of large_query_test on the denser topologies. The correctness half of a
// test must still run in every configuration; only the timing expectation
// gets gated:
//
//   if (kTimingPinned) EXPECT_LT(r.stats.optimize_ms, 100);
// ---------------------------------------------------------------------------
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
inline constexpr bool kInstrumentedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
inline constexpr bool kInstrumentedBuild = true;
#else
inline constexpr bool kInstrumentedBuild = false;
#endif
#else
inline constexpr bool kInstrumentedBuild = false;
#endif
#if defined(__OPTIMIZE__)
inline constexpr bool kTimingPinned = !kInstrumentedBuild;
#else
inline constexpr bool kTimingPinned = false;  // -O0: Debug matrix legs
#endif

/// Aggregate mixes for the two-relation equivalence tests.
/// Each mix is a different exercise of splittability / decomposability /
/// duplicate (in)sensitivity.
enum class AggMix {
  kCountOnly,        // count(*)
  kSumBoth,          // count(*), sum(R0.v), sum(R1.v)
  kMinMax,           // count(*), min(R0.v), max(R1.v)
  kCountAttr,        // count(*), count(R0.v), sum(R1.v)
  kDistinctRight,    // count(*), sum(R0.v), count(distinct R1.v)
  kAvgLeft,          // avg(R0.v), sum(R1.v)  (canonicalized)
};

inline std::vector<AggMix> AllAggMixes() {
  return {AggMix::kCountOnly, AggMix::kSumBoth, AggMix::kMinMax,
          AggMix::kCountAttr, AggMix::kDistinctRight, AggMix::kAvgLeft};
}

struct TwoRelSpec {
  OpKind kind = OpKind::kJoin;
  AggMix mix = AggMix::kSumBoth;
  bool key_on_r0 = false;  ///< declare R0.j as key of R0
  bool key_on_r1 = false;  ///< declare R1.j as key of R1
  bool group_on_right = true;  ///< include R1.g in G (left-only ops: never)
};

/// R0(j,g,v) ◦ R1(j,g,v) with predicate R0.j = R1.j, grouped by R0.g
/// (and R1.g when visible and requested).
inline Query MakeTwoRelQuery(const TwoRelSpec& spec) {
  // Domains are small relative to cardinalities so that pushed groupings
  // genuinely reduce intermediate sizes (d(j)·d(g) ≪ |R|).
  Catalog catalog;
  int r0 = catalog.AddRelation("R0", 1000);
  int j0 = catalog.AddAttribute(r0, "R0.j", 20);
  int g0 = catalog.AddAttribute(r0, "R0.g", 10);
  int v0 = catalog.AddAttribute(r0, "R0.v", 500);
  int r1 = catalog.AddRelation("R1", 2000);
  int j1 = catalog.AddAttribute(r1, "R1.j", 20);
  int g1 = catalog.AddAttribute(r1, "R1.g", 5);
  int v1 = catalog.AddAttribute(r1, "R1.v", 800);
  if (spec.key_on_r0) catalog.DeclareKey(r0, AttrSet::Single(j0));
  if (spec.key_on_r1) catalog.DeclareKey(r1, AttrSet::Single(j1));

  JoinPredicate pred;
  pred.AddEquality(j0, j1);
  auto root = OpTreeNode::Binary(spec.kind, OpTreeNode::Leaf(r0),
                                 OpTreeNode::Leaf(r1), pred, 0.01);
  if (spec.kind == OpKind::kGroupJoin) {
    AggregateFunction cnt;
    cnt.kind = AggKind::kCountStar;
    root->groupjoin_aggs.push_back(cnt);
  }

  bool right_visible = !LeftOnlyOutput(spec.kind);
  AttrSet group_by;
  group_by.Add(g0);
  if (right_visible && spec.group_on_right) group_by.Add(g1);

  AggregateVector aggs;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggs.push_back(cnt);
  auto add = [&](const char* name, AggKind kind, int arg,
                 bool distinct = false) {
    AggregateFunction f;
    f.output = name;
    f.kind = kind;
    f.arg = arg;
    f.distinct = distinct;
    aggs.push_back(f);
  };
  switch (spec.mix) {
    case AggMix::kCountOnly:
      break;
    case AggMix::kSumBoth:
      add("s0", AggKind::kSum, v0);
      if (right_visible) add("s1", AggKind::kSum, v1);
      break;
    case AggMix::kMinMax:
      add("m0", AggKind::kMin, v0);
      if (right_visible) add("m1", AggKind::kMax, v1);
      break;
    case AggMix::kCountAttr:
      add("c0", AggKind::kCount, v0);
      if (right_visible) add("s1", AggKind::kSum, v1);
      break;
    case AggMix::kDistinctRight:
      add("s0", AggKind::kSum, v0);
      if (right_visible) add("d1", AggKind::kCount, v1, /*distinct=*/true);
      break;
    case AggMix::kAvgLeft:
      add("a0", AggKind::kAvg, v0);
      if (right_visible) add("s1", AggKind::kSum, v1);
      break;
  }

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

/// Executes `plan` and the canonical evaluation and returns true on bag
/// equality; on mismatch, *message receives a diff-friendly dump.
inline bool PlanMatchesCanonical(const PlanPtr& plan, const Query& query,
                                 const Database& db, std::string* message) {
  Table got = ExecutePlan(plan, query, db);
  Table want = ExecuteCanonical(query, db);
  if (Table::BagEquals(got, want)) return true;
  if (message != nullptr) {
    *message = "plan:\n" + plan->ToString(query.catalog()) + "\nresult:\n" +
               got.ToString() + "\nexpected:\n" + want.ToString();
  }
  return false;
}

}  // namespace eadp

#endif  // EADP_TESTS_TEST_UTIL_H_
