// Contract coverage for common/thread_pool.h:
//
//   * futures carry results and Submit accepts arbitrary callables;
//   * tasks *start* in submission order (FIFO; pinned exactly on a size-1
//     pool, where start order == completion order);
//   * exceptions thrown by a task are captured into its future and rethrown
//     at .get(), and the worker survives to run later tasks;
//   * destruction with queued tasks drains the queue — every submitted
//     future becomes ready, none go broken;
//   * concurrent Submit from many threads neither loses nor duplicates
//     tasks (also the TSan workout for the queue).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace eadp {
namespace {

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(pool.tasks_submitted(), 100u);
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, TasksStartInSubmissionOrder) {
  // On a single worker, start order is completion order, so FIFO is
  // directly observable. (With more workers only the *dequeue* order is
  // FIFO; completion order is up to the scheduler.)
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> want(50);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  std::future<int> boom =
      pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  // Many more tasks than workers, each slow enough that most still sit in
  // the queue when the destructor runs: all of them must complete (futures
  // ready, counter full), none may be dropped or left broken.
  constexpr int kTasks = 64;
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), kTasks);
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    EXPECT_NO_THROW(f.get());  // a dropped task would raise broken_promise
  }
}

TEST(ThreadPool, ConcurrentSubmitLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, &futures, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        futures[static_cast<size_t>(p)].push_back(pool.Submit(
            [&sum, value] { sum.fetch_add(value, std::memory_order_relaxed); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(pool.tasks_submitted(), static_cast<uint64_t>(n));
}

}  // namespace
}  // namespace eadp
