// Plan validator: accepts all generator output, rejects corrupted plans.

#include "plangen/plan_validator.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "plangen/plangen.h"
#include "queries/query_generator.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

TEST(PlanValidator, AcceptsAllGeneratedPlans) {
  GeneratorOptions gen;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    gen.num_relations = 3 + static_cast<int>(seed % 5);
    Query q = GenerateRandomQuery(gen, seed);
    for (Algorithm a : {Algorithm::kDphyp, Algorithm::kEaPrune,
                        Algorithm::kH1, Algorithm::kH2}) {
      OptimizerOptions opt;
      opt.algorithm = a;
      OptimizeResult r = Optimize(q, opt);
      ASSERT_NE(r.plan, nullptr);
      std::vector<std::string> violations = ValidatePlan(r.plan, q);
      EXPECT_TRUE(violations.empty())
          << AlgorithmName(a) << " seed " << seed << ": "
          << StrJoin(violations, "; ") << "\n"
          << r.plan->ToString(q.catalog());
    }
  }
}

TEST(PlanValidator, AcceptsTpchPlans) {
  std::vector<Query> queries;
  queries.push_back(MakeTpchEx());
  queries.push_back(MakeTpchQ1());
  queries.push_back(MakeTpchQ3());
  queries.push_back(MakeTpchQ5());
  queries.push_back(MakeTpchQ10());
  queries.push_back(MakeTpchQ18());
  for (const Query& q : queries) {
    OptimizerOptions opt;
    opt.algorithm = Algorithm::kEaPrune;
    OptimizeResult r = Optimize(q, opt);
    ASSERT_NE(r.plan, nullptr);
    std::vector<std::string> violations = ValidatePlan(r.plan, q);
    EXPECT_TRUE(violations.empty()) << StrJoin(violations, "; ");
  }
}

TEST(PlanValidator, RejectsNullPlan) {
  GeneratorOptions gen;
  gen.num_relations = 3;
  Query q = GenerateRandomQuery(gen, 1);
  EXPECT_FALSE(ValidatePlan(nullptr, q).empty());
}

TEST(PlanValidator, DetectsDuplicateOperatorApplication) {
  GeneratorOptions gen;
  gen.num_relations = 3;
  Query q = GenerateRandomQuery(gen, 1);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  ASSERT_NE(r.plan, nullptr);
  // Corrupt: duplicate the op index list on the top binary node. Cloned
  // nodes go into a local arena; the interned crossing payload is cloned
  // too before mutation (payloads are shared between nodes).
  PlanArena arena;
  std::function<PlanPtr(const PlanNode&)> corrupt =
      [&](const PlanNode& n) -> PlanPtr {
    PlanNode* copy = arena.NewNode(n);
    if (copy->IsBinary() && !copy->op_indices().empty()) {
      CrossingInfo* ci = arena.arena().New<CrossingInfo>(*copy->crossing);
      ci->op_indices.push_back(ci->op_indices[0]);
      copy->crossing = ci;
      return copy;
    }
    if (copy->left) copy->left = corrupt(*copy->left);
    return copy;
  };
  PlanPtr bad = corrupt(*r.plan);
  EXPECT_FALSE(ValidatePlan(bad, q).empty());
}

TEST(PlanValidator, DetectsBrokenCostBookkeeping) {
  GeneratorOptions gen;
  gen.num_relations = 3;
  Query q = GenerateRandomQuery(gen, 2);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  ASSERT_NE(r.plan, nullptr);
  PlanArena arena;
  std::function<PlanPtr(const PlanNode&)> corrupt =
      [&](const PlanNode& n) -> PlanPtr {
    PlanNode* copy = arena.NewNode(n);
    if (copy->IsBinary()) {
      copy->cost = copy->cost * 2 + 100;
      return copy;
    }
    if (copy->left) copy->left = corrupt(*copy->left);
    return copy;
  };
  PlanPtr bad = corrupt(*r.plan);
  EXPECT_FALSE(ValidatePlan(bad, q).empty());
}

TEST(PlanValidator, DetectsMissingOuterJoinDefaults) {
  // Build a full-outer query whose EA plan pushes a grouping, then strip
  // the default vector off the outer join.
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  ASSERT_NE(r.plan, nullptr);
  ASSERT_TRUE(ValidatePlan(r.plan, q).empty());
  PlanArena arena;
  std::function<PlanPtr(const PlanNode&)> strip =
      [&](const PlanNode& n) -> PlanPtr {
    PlanNode* copy = arena.NewNode(n);
    if (copy->op == PlanOp::kFullOuter || copy->op == PlanOp::kLeftOuter) {
      copy->left_defaults_ = nullptr;
      copy->right_defaults_ = nullptr;
    }
    if (copy->left) copy->left = strip(*copy->left);
    if (copy->right) copy->right = strip(*copy->right);
    return copy;
  };
  PlanPtr bad = strip(*r.plan);
  // Only a violation if the plan actually pushed groupings below the
  // outer join (it does for Ex: the whole point of the paper).
  ASSERT_GT(bad->PushedGroupingCount(), 0);
  EXPECT_FALSE(ValidatePlan(bad, q).empty());
}

}  // namespace
}  // namespace eadp
