#include "catalog/functional_dependency.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

AttrSet Set(std::initializer_list<int> xs) {
  AttrSet s;
  for (int x : xs) s.Add(x);
  return s;
}

TEST(FdSet, ClosureReflexive) {
  FdSet fds;
  EXPECT_EQ(fds.Closure(Set({1, 2})), Set({1, 2}));
}

TEST(FdSet, ClosureTransitive) {
  FdSet fds;
  fds.Add(Set({0}), Set({1}));
  fds.Add(Set({1}), Set({2}));
  EXPECT_EQ(fds.Closure(Set({0})), Set({0, 1, 2}));
}

TEST(FdSet, ClosureRequiresFullLhs) {
  FdSet fds;
  fds.Add(Set({0, 1}), Set({2}));
  EXPECT_EQ(fds.Closure(Set({0})), Set({0}));
  EXPECT_EQ(fds.Closure(Set({0, 1})), Set({0, 1, 2}));
}

TEST(FdSet, Implies) {
  FdSet fds;
  fds.Add(Set({0}), Set({1, 2}));
  EXPECT_TRUE(fds.Implies(Set({0}), Set({2})));
  EXPECT_FALSE(fds.Implies(Set({1}), Set({0})));
}

TEST(FdSet, IsSuperkey) {
  FdSet fds;
  fds.Add(Set({0}), Set({1, 2}));
  EXPECT_TRUE(fds.IsSuperkey(Set({0}), Set({0, 1, 2})));
  EXPECT_FALSE(fds.IsSuperkey(Set({1}), Set({0, 1, 2})));
}

TEST(FdSet, CandidateKeysSimple) {
  FdSet fds;
  fds.Add(Set({0}), Set({1, 2}));
  auto keys = fds.CandidateKeys(Set({0, 1, 2}));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], Set({0}));
}

TEST(FdSet, CandidateKeysMultiple) {
  // 0 -> 1, 1 -> 0, both determine 2: keys {0} and {1}.
  FdSet fds;
  fds.Add(Set({0}), Set({1, 2}));
  fds.Add(Set({1}), Set({0, 2}));
  auto keys = fds.CandidateKeys(Set({0, 1, 2}));
  EXPECT_EQ(keys.size(), 2u);
}

TEST(FdSet, CandidateKeysNoFds) {
  FdSet fds;
  auto keys = fds.CandidateKeys(Set({0, 1}));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], Set({0, 1}));  // only the universe itself
}

TEST(FdSet, Covers) {
  FdSet a;
  a.Add(Set({0}), Set({1}));
  a.Add(Set({1}), Set({2}));
  FdSet b;
  b.Add(Set({0}), Set({2}));  // implied by a transitively
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
}

TEST(KeysDominate, SubsetKeysAreStronger) {
  // {0} implies any key containing 0.
  std::vector<AttrSet> strong = {Set({0})};
  std::vector<AttrSet> weak = {Set({0, 1}), Set({0, 2})};
  EXPECT_TRUE(KeysDominate(strong, weak));
  EXPECT_FALSE(KeysDominate(weak, strong));
}

TEST(KeysDominate, EmptyKeySetIsWeakest) {
  std::vector<AttrSet> none;
  std::vector<AttrSet> some = {Set({0})};
  EXPECT_TRUE(KeysDominate(some, none));  // vacuously
  EXPECT_FALSE(KeysDominate(none, some));
}

TEST(InsertMinimalKey, DropsSupersets) {
  std::vector<AttrSet> keys = {Set({0, 1}), Set({2, 3})};
  InsertMinimalKey(keys, Set({0}));
  EXPECT_EQ(keys.size(), 2u);  // {0,1} removed, {0} added
  EXPECT_TRUE(KeysDominate(keys, {Set({0, 1})}));
}

TEST(InsertMinimalKey, IgnoresRedundantInsert) {
  std::vector<AttrSet> keys = {Set({0})};
  InsertMinimalKey(keys, Set({0, 1}));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], Set({0}));
}

}  // namespace
}  // namespace eadp
