// Master correctness property: every plan produced by every algorithm on
// random multi-operator queries computes exactly the canonical result on
// randomized data (bags, NULLs, duplicates, outer joins, semijoins,
// groupjoins, eager aggregation, defaults, Eqv. 42 elimination — all of it
// end to end).

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, AllAlgorithmsMatchCanonicalOnRandomQueries) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  GeneratorOptions gen;
  gen.num_relations = 3 + static_cast<int>(seed % 4);  // 3..6
  Query query = GenerateRandomQuery(gen, seed);
  Database db = GenerateDatabase(query, seed * 31 + 5);

  for (Algorithm a : {Algorithm::kDphyp, Algorithm::kEaAll,
                      Algorithm::kEaPrune, Algorithm::kH1, Algorithm::kH2}) {
    OptimizerOptions opt;
    opt.algorithm = a;
    OptimizeResult r = Optimize(query, opt);
    ASSERT_NE(r.plan, nullptr)
        << AlgorithmName(a) << " produced no plan for\n"
        << query.ToString();
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message))
        << AlgorithmName(a) << " on seed " << seed << "\n"
        << query.ToString() << message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest, ::testing::Range(0, 60));

class InnerOnlyEndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(InnerOnlyEndToEndTest, InnerJoinWorkloadsMatchCanonical) {
  // Inner-only workloads reorder freely — the widest search spaces.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  GeneratorOptions gen;
  gen.num_relations = 5 + static_cast<int>(seed % 3);
  gen.inner_joins_only = true;
  Query query = GenerateRandomQuery(gen, seed + 10000);
  Database db = GenerateDatabase(query, seed * 17 + 3);
  for (Algorithm a :
       {Algorithm::kDphyp, Algorithm::kEaPrune, Algorithm::kH2}) {
    OptimizerOptions opt;
    opt.algorithm = a;
    OptimizeResult r = Optimize(query, opt);
    ASSERT_NE(r.plan, nullptr);
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message))
        << AlgorithmName(a) << " on seed " << seed << "\n"
        << message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InnerOnlyEndToEndTest,
                         ::testing::Range(0, 20));

TEST(EndToEnd, LargerDataVolumesStillAgree) {
  GeneratorOptions gen;
  gen.num_relations = 4;
  Query query = GenerateRandomQuery(gen, 999);
  DataOptions data;
  data.min_rows = 20;
  data.max_rows = 40;
  data.value_domain = 8;
  Database db = GenerateDatabase(query, 1234, data);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(query, opt);
  std::string message;
  EXPECT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message)) << message;
}

TEST(EndToEnd, ManySeedsSmokeEaPrune) {
  // A broader, cheaper sweep with just EA-Prune (the algorithm whose plans
  // exercise the most machinery: lists, pruning, defaults, elimination).
  for (uint64_t seed = 100; seed < 160; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 3 + static_cast<int>(seed % 5);
    Query query = GenerateRandomQuery(gen, seed);
    Database db = GenerateDatabase(query, seed * 13 + 7);
    OptimizerOptions opt;
    opt.algorithm = Algorithm::kEaPrune;
    OptimizeResult r = Optimize(query, opt);
    ASSERT_NE(r.plan, nullptr);
    std::string message;
    ASSERT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message))
        << "seed " << seed << "\n"
        << query.ToString() << message;
  }
}

}  // namespace
}  // namespace eadp
