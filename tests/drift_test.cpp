// Statistics-drift pins for the layered fingerprint + incremental
// re-optimization stack (DESIGN.md §14):
//
//   * differential re-cost — RecostPlan under unchanged statistics is
//     bit-identical to the plan's stored cost/cardinality annotations,
//     across the operator mixes and topologies the generators produce;
//   * DriftCostScale — 1 on bit-equal overlays, in (0, 1) under drift,
//     0 across structural classes;
//   * PR 8 parity — with unchanged statistics the drift-aware facade is
//     observationally identical to the stats-keyed tiered cache: same
//     hits/misses, same tier attribution, bit-identical served costs,
//     zero drift counters;
//   * the drifting stream — a seeded 1000-query Zipf stream with gentle
//     cardinality drift: >= 70% of drifted hits are served via re-cost
//     (full re-plans avoided), and the end-of-stream plan quality is
//     bit-identical to an always-re-plan baseline;
//   * inline and background re-planning — zero tolerance re-plans
//     drifted hits inline (fresh costs, entry refreshed); with a pool
//     the stale plan serves immediately and the refreshed entry later
//     turns probes into exact hits;
//   * the disk tier — drifted L2 hits re-plan under zero tolerance and
//     re-cost-serve under a generous one.

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/recost.h"
#include "plangen/persistent_cache.h"
#include "plangen/plan_cache.h"
#include "plangen/plan_explain.h"
#include "plangen/plangen.h"
#include "queries/fingerprint.h"
#include "queries/mutation.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_relations = n;
  return GenerateRandomQuery(gen, seed);
}

/// Gentle drift for the stream test: scales one relation's cardinality by
/// a few percent and repairs its attributes' distinct counts the same way
/// ApplyStatsDrift does (keys keep distinct == cardinality). Small moves
/// keep the re-costed plan inside a moderate tolerance band — the regime
/// the re-cost path exists for; ApplyStatsDrift's 0.2–5x swings model
/// stale-statistics cliffs and are exercised by the fuzz oracle instead.
void DriftGently(Catalog* catalog, Rng* rng) {
  int r = static_cast<int>(rng->UniformInt(0, catalog->num_relations() - 1));
  const RelationDef& rel = catalog->relation(r);
  double card =
      std::max(2.0, rel.cardinality * rng->UniformDouble(0.96, 1.04));
  if (card == rel.cardinality) card += 1.0;
  AttrSet key_attrs;
  for (const AttrSet& key : rel.keys) key_attrs.UnionWith(key);
  catalog->SetCardinality(r, card);
  for (int a : BitsOf(rel.attributes)) {
    double distinct = key_attrs.Contains(a)
                          ? card
                          : std::min(catalog->DistinctOf(a), card);
    catalog->SetDistinct(a, distinct);
  }
}

// ---------------------------------------------------------------------------
// Re-cost differential: unchanged statistics reproduce the annotations.
// ---------------------------------------------------------------------------

TEST(Recost, BitIdenticalUnderUnchangedStats) {
  for (int n = 2; n <= 8; ++n) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      Query q = MakeQuery(n, seed);
      OptimizerOptions options;
      OptimizeResult r = OptimizeAdaptive(q, options);
      ASSERT_NE(r.plan, nullptr) << "n=" << n << " seed=" << seed;
      RecostResult rc = RecostPlan(r.plan, q);
      EXPECT_TRUE(rc.ok) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(rc.cost, r.plan->cost) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(rc.cardinality, r.plan->cardinality)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Recost, BitIdenticalAcrossMixesAndTopologies) {
  std::vector<Query> corpus;
  corpus.push_back(GenerateRandomQuery(OuterHeavyOptions(6), 3));
  corpus.push_back(GenerateRandomQuery(OuterHeavyOptions(7), 9));
  for (QueryTopology t : {QueryTopology::kClique, QueryTopology::kCycle,
                          QueryTopology::kSnowflake}) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 12;
    corpus.push_back(GenerateRandomQuery(gen, 21));
  }
  {
    GeneratorOptions gen;
    gen.topology = QueryTopology::kClique;
    gen.num_relations = 10;
    gen.per_edge_predicates = true;
    corpus.push_back(GenerateRandomQuery(gen, 4));
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    OptimizerOptions options;
    OptimizeResult r = OptimizeAdaptive(corpus[i], options);
    ASSERT_NE(r.plan, nullptr) << "query " << i;
    RecostResult rc = RecostPlan(r.plan, corpus[i]);
    EXPECT_TRUE(rc.ok) << "query " << i;
    EXPECT_EQ(rc.cost, r.plan->cost) << "query " << i;
    EXPECT_EQ(rc.cardinality, r.plan->cardinality) << "query " << i;
  }
}

TEST(Recost, TracksACardinalityChange) {
  Query q = MakeQuery(5, 11);
  OptimizerOptions options;
  OptimizeResult r = OptimizeAdaptive(q, options);
  ASSERT_NE(r.plan, nullptr);

  // Doubling SOME relation's cardinality must move the re-costed root
  // cost (a single relation can hide behind key caps or a dup-free
  // grouping, so scan them all), and the re-cost must be deterministic.
  bool moved = false;
  for (int rel = 0; rel < q.NumRelations(); ++rel) {
    QuerySpec spec = QuerySpec::FromQuery(q);
    spec.catalog.SetCardinality(
        rel, spec.catalog.relation(rel).cardinality * 2);
    Query drifted = spec.ToQuery();
    RecostResult rc = RecostPlan(r.plan, drifted);
    ASSERT_TRUE(rc.ok) << "relation " << rel;
    RecostResult again = RecostPlan(r.plan, drifted);
    EXPECT_EQ(rc.cost, again.cost) << "relation " << rel;
    moved |= rc.cost != r.plan->cost;
  }
  EXPECT_TRUE(moved);
}

TEST(DriftCostScale, BoundsAndIdentity) {
  Query q = MakeQuery(5, 2);
  OptimizerOptions options;
  StatsOverlay base = PlanCacheKeySplit(q, options).overlay;
  EXPECT_EQ(DriftCostScale(base, base), 1.0);

  QuerySpec spec = QuerySpec::FromQuery(q);
  spec.catalog.SetCardinality(1, spec.catalog.relation(1).cardinality * 4);
  StatsOverlay moved = PlanCacheKeySplit(spec.ToQuery(), options).overlay;
  double scale = DriftCostScale(base, moved);
  EXPECT_GT(scale, 0.0);
  EXPECT_LT(scale, 1.0);
  // Symmetric: min(r, 1/r) is direction-free.
  EXPECT_EQ(scale, DriftCostScale(moved, base));

  // Different structural class (different shape vectors) -> 0.
  StatsOverlay other = PlanCacheKeySplit(MakeQuery(4, 2), options).overlay;
  EXPECT_EQ(DriftCostScale(base, other), 0.0);
}

// ---------------------------------------------------------------------------
// PR 8 parity: unchanged statistics are observationally identical to the
// stats-keyed facade.
// ---------------------------------------------------------------------------

TEST(Drift, UnchangedStatsBehaveLikeTheTieredCache) {
  PlanCache cache;
  OptimizerOptions off;
  OptimizerOptions on;
  on.plan_cache = &cache;
  const int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    Query q = MakeQuery(3 + i % 5, 100 + static_cast<uint64_t>(i));
    OptimizeResult fresh = OptimizeAdaptive(q, off);
    ASSERT_NE(fresh.plan, nullptr);
    OptimizeResult cold = OptimizeAdaptive(q, on);
    EXPECT_FALSE(cold.stats.cache_hit);
    OptimizeResult warm = OptimizeAdaptive(q, on);
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.stats.cache_tier, 1);
    EXPECT_FALSE(warm.stats.replan_avoided);
    EXPECT_FALSE(warm.stats.replan_background);
    EXPECT_EQ(warm.plan->cost, fresh.plan->cost);
    EXPECT_EQ(PlanToJson(warm.plan, q.catalog()),
              PlanToJson(fresh.plan, q.catalog()));
  }
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.inserts, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.drift_hits, 0u);
  EXPECT_EQ(stats.replans_avoided, 0u);
  EXPECT_EQ(stats.replans_background, 0u);
  EXPECT_EQ(stats.refreshes, 0u);
}

// A catalog copy (fresh catalog_id, same statistics) must still be an
// exact hit: overlay equality falls back to content comparison, so
// re-materialized queries do not masquerade as drift.
TEST(Drift, RematerializedQueryIsAnExactHit) {
  PlanCache cache;
  OptimizerOptions on;
  on.plan_cache = &cache;
  Query q = MakeQuery(5, 77);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizeAdaptive(q, on);
  OptimizeResult warm = OptimizeAdaptive(spec.ToQuery(), on);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_FALSE(warm.stats.replan_avoided);
  EXPECT_EQ(cache.Snapshot().drift_hits, 0u);
}

// ---------------------------------------------------------------------------
// Inline re-plan (zero tolerance) and re-cost serving (tolerance band).
// ---------------------------------------------------------------------------

TEST(Drift, ZeroToleranceReplansInlineAndRefreshes) {
  PlanCache cache;
  OptimizerOptions off;
  OptimizerOptions on;
  on.plan_cache = &cache;
  Query q = MakeQuery(6, 5);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizeAdaptive(q, on);

  Rng rng(99);
  DriftGently(&spec.catalog, &rng);
  Query drifted = spec.ToQuery();
  OptimizeResult fresh = OptimizeAdaptive(drifted, off);
  ASSERT_NE(fresh.plan, nullptr);
  OptimizeResult replanned = OptimizeAdaptive(drifted, on);
  EXPECT_FALSE(replanned.stats.cache_hit);
  EXPECT_FALSE(replanned.stats.replan_avoided);
  EXPECT_EQ(replanned.plan->cost, fresh.plan->cost);

  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.drift_hits, 1u);
  EXPECT_EQ(stats.replans_avoided, 0u);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.entries, 1u);  // refreshed in place, not duplicated

  // The refreshed entry now carries the drifted overlay: next probe is an
  // exact hit at the fresh cost.
  OptimizeResult warm = OptimizeAdaptive(drifted, on);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.stats.cache_tier, 1);
  EXPECT_EQ(warm.plan->cost, fresh.plan->cost);
  EXPECT_EQ(cache.Snapshot().drift_hits, 1u);
}

TEST(Drift, ToleranceBandServesTheRecostedPlan) {
  PlanCache cache;
  OptimizerOptions on;
  on.plan_cache = &cache;
  Query q = MakeQuery(6, 8);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizeResult cold = OptimizeAdaptive(q, on);
  ASSERT_NE(cold.plan, nullptr);

  Rng rng(3);
  DriftGently(&spec.catalog, &rng);
  Query drifted = spec.ToQuery();

  OptimizerOptions tolerant = on;
  tolerant.drift_tolerance = 1e9;  // any re-costable plan serves
  OptimizeResult served = OptimizeAdaptive(drifted, tolerant);
  EXPECT_TRUE(served.stats.cache_hit);
  EXPECT_TRUE(served.stats.replan_avoided);
  EXPECT_FALSE(served.stats.replan_background);
  EXPECT_EQ(served.stats.cache_tier, 1);
  // The served result is the cached plan; its re-costed cost under the
  // drifted catalog is reported alongside.
  EXPECT_EQ(served.plan->cost, cold.plan->cost);
  RecostResult rc = RecostPlan(cold.plan, drifted);
  ASSERT_TRUE(rc.ok);
  EXPECT_EQ(served.stats.recosted_cost, rc.cost);

  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.drift_hits, 1u);
  EXPECT_EQ(stats.replans_avoided, 1u);
  EXPECT_EQ(stats.refreshes, 0u);  // avoided = no refresh
}

TEST(Drift, BackgroundReplanServesStaleThenSwapsIn) {
  PlanCache cache;
  ThreadPool pool(2);
  OptimizerOptions off;
  OptimizerOptions on;
  on.plan_cache = &cache;
  on.replan_pool = &pool;  // zero tolerance: every drifted hit re-plans

  Query q = MakeQuery(6, 13);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizeResult cold = OptimizeAdaptive(q, on);
  ASSERT_NE(cold.plan, nullptr);

  Rng rng(7);
  DriftGently(&spec.catalog, &rng);
  Query drifted = spec.ToQuery();
  OptimizeResult fresh = OptimizeAdaptive(drifted, off);
  ASSERT_NE(fresh.plan, nullptr);

  OptimizeResult served = OptimizeAdaptive(drifted, on);
  EXPECT_TRUE(served.stats.cache_hit);
  EXPECT_TRUE(served.stats.replan_background);
  EXPECT_FALSE(served.stats.replan_avoided);
  EXPECT_EQ(served.plan->cost, cold.plan->cost);  // stale plan serves now

  // The background re-plan lands via Refresh; poll with a deadline.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (cache.Snapshot().refreshes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  PlanCacheStats stats = cache.Snapshot();
  ASSERT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.replans_background, 1u);

  OptimizeResult warm = OptimizeAdaptive(drifted, on);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_FALSE(warm.stats.replan_background);
  EXPECT_EQ(warm.stats.cache_tier, 1);
  EXPECT_EQ(warm.plan->cost, fresh.plan->cost);
}

// ---------------------------------------------------------------------------
// The drifting stream: re-plans avoided at equal final plan quality.
// ---------------------------------------------------------------------------

TEST(Drift, StreamAvoidsReplansAtEqualFinalQuality) {
  // A pool of query shapes probed 1000 times with Zipf popularity; ~3% of
  // arrivals are preceded by a gentle statistics drift on the arriving
  // shape. Two caches consume the identical stream: the tolerant one may
  // serve drifted hits via re-cost, the strict one re-plans every drifted
  // hit (the PR 8 baseline behavior).
  const int kShapes = 12;
  const int kEvents = 1000;
  std::vector<QuerySpec> specs;
  for (int i = 0; i < kShapes; ++i) {
    specs.push_back(QuerySpec::FromQuery(
        MakeQuery(4 + i % 3, 500 + static_cast<uint64_t>(i))));
  }
  std::vector<double> weights;
  for (int i = 0; i < kShapes; ++i) {
    weights.push_back(1.0 / std::pow(static_cast<double>(i + 1), 1.1));
  }

  PlanCache tolerant_cache;
  PlanCache strict_cache;
  OptimizerOptions tolerant;
  tolerant.plan_cache = &tolerant_cache;
  tolerant.drift_tolerance = 0.5;
  OptimizerOptions strict;
  strict.plan_cache = &strict_cache;

  Rng rng(2024);
  for (int e = 0; e < kEvents; ++e) {
    int s = rng.PickWeighted(weights.data(), kShapes);
    if (rng.Bernoulli(0.03)) {
      DriftGently(&specs[static_cast<size_t>(s)].catalog, &rng);
    }
    Query q = specs[static_cast<size_t>(s)].ToQuery();
    OptimizeResult a = OptimizeAdaptive(q, tolerant);
    OptimizeResult b = OptimizeAdaptive(q, strict);
    ASSERT_NE(a.plan, nullptr) << "event " << e;
    ASSERT_NE(b.plan, nullptr) << "event " << e;
  }

  PlanCacheStats ts = tolerant_cache.Snapshot();
  PlanCacheStats ss = strict_cache.Snapshot();
  ASSERT_GT(ts.drift_hits, 0u);
  ASSERT_GT(ss.drift_hits, 0u);
  EXPECT_EQ(ss.replans_avoided, 0u);  // strict run never serves drifted
  // >= 70% of the tolerant run's drifted hits were served without a full
  // re-plan...
  EXPECT_GE(static_cast<double>(ts.replans_avoided),
            0.7 * static_cast<double>(ts.drift_hits))
      << "avoided " << ts.replans_avoided << " of " << ts.drift_hits
      << " drifted hits";
  // ... and the tolerant run did strictly fewer full re-plans than the
  // always-re-plan baseline (its refreshes are its inline re-plans).
  EXPECT_LT(ts.refreshes, ss.refreshes);

  // Equal final plan quality: once drift quiesces, a strict probe of
  // every shape yields costs bit-identical to a fresh uncached
  // optimization under the final statistics — serving within the band
  // never corrupted either cache.
  OptimizerOptions off;
  OptimizerOptions tolerant_final = tolerant;
  tolerant_final.drift_tolerance = 0;
  for (int s = 0; s < kShapes; ++s) {
    Query q = specs[static_cast<size_t>(s)].ToQuery();
    OptimizeResult fresh = OptimizeAdaptive(q, off);
    ASSERT_NE(fresh.plan, nullptr);
    OptimizeResult a = OptimizeAdaptive(q, tolerant_final);
    OptimizeResult b = OptimizeAdaptive(q, strict);
    EXPECT_EQ(a.plan->cost, fresh.plan->cost) << "shape " << s;
    EXPECT_EQ(b.plan->cost, fresh.plan->cost) << "shape " << s;
    EXPECT_EQ(a.plan->cardinality, fresh.plan->cardinality) << "shape " << s;
    EXPECT_EQ(b.plan->cardinality, fresh.plan->cardinality) << "shape " << s;
  }
}

// ---------------------------------------------------------------------------
// The disk tier under drift.
// ---------------------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/eadp_drift_XXXXXX";
    const char* made = mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "";
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = opendir(path_.c_str())) {
      while (dirent* e = readdir(dir)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Drift, DiskTierRecostsOrReplansDriftedHits) {
  TempDir dir;
  Query q = MakeQuery(5, 31);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizerOptions off;
  OptimizeResult original;

  {
    PersistentCacheOptions popts;
    popts.directory = dir.path();
    std::string error;
    auto disk = PersistentPlanCache::Open(popts, &error);
    ASSERT_NE(disk, nullptr) << error;
    OptimizerOptions on;
    on.persistent_cache = disk.get();
    original = OptimizeAdaptive(q, on);  // populates the disk tier
    ASSERT_NE(original.plan, nullptr);
  }

  Rng rng(17);
  DriftGently(&spec.catalog, &rng);
  Query drifted = spec.ToQuery();
  OptimizeResult fresh = OptimizeAdaptive(drifted, off);
  ASSERT_NE(fresh.plan, nullptr);

  // Cold process, generous tolerance: the drifted disk hit re-cost-serves
  // the stored (stale) plan and reports tier 2. (This must run BEFORE the
  // strict probe: an inline re-plan writes behind to disk, and the
  // newest-wins record would then match the drifted statistics exactly.)
  {
    PersistentCacheOptions popts;
    popts.directory = dir.path();
    std::string error;
    auto disk = PersistentPlanCache::Open(popts, &error);
    ASSERT_NE(disk, nullptr) << error;
    PlanCache l1;
    OptimizerOptions on;
    on.plan_cache = &l1;
    on.persistent_cache = disk.get();
    on.drift_tolerance = 1e9;
    OptimizeResult served = OptimizeAdaptive(drifted, on);
    EXPECT_TRUE(served.stats.cache_hit);
    EXPECT_TRUE(served.stats.replan_avoided);
    EXPECT_EQ(served.stats.cache_tier, 2);
    EXPECT_EQ(served.plan->cost, original.plan->cost);
  }

  // Cold process, strict tolerance: the drifted disk hit must re-plan.
  {
    PersistentCacheOptions popts;
    popts.directory = dir.path();
    std::string error;
    auto disk = PersistentPlanCache::Open(popts, &error);
    ASSERT_NE(disk, nullptr) << error;
    PlanCache l1;
    OptimizerOptions on;
    on.plan_cache = &l1;
    on.persistent_cache = disk.get();
    OptimizeResult replanned = OptimizeAdaptive(drifted, on);
    EXPECT_FALSE(replanned.stats.cache_hit);
    EXPECT_EQ(replanned.plan->cost, fresh.plan->cost);
    EXPECT_EQ(l1.Snapshot().drift_hits, 1u);
  }

  // And after that write-behind, the disk tier's newest record matches
  // the drifted statistics: a third cold open is an exact tier-2 hit.
  {
    PersistentCacheOptions popts;
    popts.directory = dir.path();
    std::string error;
    auto disk = PersistentPlanCache::Open(popts, &error);
    ASSERT_NE(disk, nullptr) << error;
    OptimizerOptions on;
    on.persistent_cache = disk.get();
    OptimizeResult warm = OptimizeAdaptive(drifted, on);
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.stats.cache_tier, 2);
    EXPECT_FALSE(warm.stats.replan_avoided);
    EXPECT_EQ(warm.plan->cost, fresh.plan->cost);
  }
}

}  // namespace
}  // namespace eadp
