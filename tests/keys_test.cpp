// Key inference per operator (paper Sec. 2.3) and NeedsGrouping (Fig. 7).

#include "plangen/keys.h"

#include <gtest/gtest.h>

#include "plangen/plan.h"

namespace eadp {
namespace {

AttrSet Set(std::initializer_list<int> xs) {
  AttrSet s;
  for (int x : xs) s.Add(x);
  return s;
}

struct Fixture {
  Catalog catalog;
  PlanNode left;
  PlanNode right;
  KeySet left_keys;
  KeySet right_keys;

  // R0: attrs {0 = key-ish, 1}; R1: attrs {2 = key-ish, 3}.
  Fixture() {
    int r0 = catalog.AddRelation("R0", 100);
    catalog.AddAttribute(r0, "R0.k", 100);
    catalog.AddAttribute(r0, "R0.x", 10);
    int r1 = catalog.AddRelation("R1", 200);
    catalog.AddAttribute(r1, "R1.k", 200);
    catalog.AddAttribute(r1, "R1.x", 10);
    left.op = PlanOp::kScan;
    left.rels = RelSet::Single(0);
    left.keys_ = &left_keys;
    right.op = PlanOp::kScan;
    right.rels = RelSet::Single(1);
    right.keys_ = &right_keys;
  }

  JoinPredicate PredKK() {
    JoinPredicate p;
    p.AddEquality(0, 2);
    return p;
  }
  JoinPredicate PredXX() {
    JoinPredicate p;
    p.AddEquality(1, 3);
    return p;
  }
};

TEST(Keys, InnerJoinBothSidesKeyed) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  f.right_keys = {Set({2})};
  f.right.duplicate_free = true;
  KeyProperties k = ComputeJoinKeys(PlanOp::kJoin, f.catalog, f.left, f.right,
                                    f.PredKK());
  // Both join attrs are keys: κ = κ(e1) ∪ κ(e2).
  EXPECT_TRUE(k.duplicate_free);
  EXPECT_TRUE(HasKeySubset(k.keys, Set({0})));
  EXPECT_TRUE(HasKeySubset(k.keys, Set({2})));
}

TEST(Keys, InnerJoinLeftKeyOnly) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  f.right_keys = {Set({2})};
  f.right.duplicate_free = true;
  // Join on R0.k = R1.x: only the left side's join attr is a key, so each
  // right row matches at most one left row -> right keys survive.
  JoinPredicate p;
  p.AddEquality(0, 3);
  KeyProperties k =
      ComputeJoinKeys(PlanOp::kJoin, f.catalog, f.left, f.right, p);
  EXPECT_TRUE(HasKeySubset(k.keys, Set({2})));
  EXPECT_FALSE(HasKeySubset(k.keys, Set({0})));
}

TEST(Keys, InnerJoinNoKeysCombines) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  f.right_keys = {Set({2})};
  f.right.duplicate_free = true;
  // Join on non-key attrs both sides: pairwise unions.
  KeyProperties k = ComputeJoinKeys(PlanOp::kJoin, f.catalog, f.left, f.right,
                                    f.PredXX());
  EXPECT_FALSE(HasKeySubset(k.keys, Set({0})));
  EXPECT_TRUE(HasKeySubset(k.keys, Set({0, 2})));
}

TEST(Keys, LeftOuterJoinRightKeyPreservesLeftKeys) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  f.right_keys = {Set({2})};
  f.right.duplicate_free = true;
  KeyProperties k = ComputeJoinKeys(PlanOp::kLeftOuter, f.catalog, f.left,
                                    f.right, f.PredKK());
  EXPECT_TRUE(HasKeySubset(k.keys, Set({0})));
  // Right keys do NOT survive a left outerjoin (padded NULL rows collide).
  EXPECT_FALSE(HasKeySubset(k.keys, Set({2})));
}

TEST(Keys, FullOuterAlwaysCombines) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  f.right_keys = {Set({2})};
  f.right.duplicate_free = true;
  KeyProperties k = ComputeJoinKeys(PlanOp::kFullOuter, f.catalog, f.left,
                                    f.right, f.PredKK());
  EXPECT_FALSE(HasKeySubset(k.keys, Set({0})));
  EXPECT_FALSE(HasKeySubset(k.keys, Set({2})));
  EXPECT_TRUE(HasKeySubset(k.keys, Set({0, 2})));
}

TEST(Keys, SemiAntiGroupjoinKeepLeftKeys) {
  Fixture f;
  f.left_keys = {Set({0})};
  f.left.duplicate_free = true;
  for (PlanOp op :
       {PlanOp::kLeftSemi, PlanOp::kLeftAnti, PlanOp::kGroupJoin}) {
    KeyProperties k =
        ComputeJoinKeys(op, f.catalog, f.left, f.right, f.PredKK());
    EXPECT_EQ(k.keys.size(), 1u);
    EXPECT_EQ(k.keys[0], Set({0}));
    EXPECT_TRUE(k.duplicate_free);
  }
}

TEST(Keys, DuplicateBagsStayDuplicate) {
  Fixture f;  // no keys, not duplicate free
  KeyProperties k = ComputeJoinKeys(PlanOp::kJoin, f.catalog, f.left, f.right,
                                    f.PredKK());
  EXPECT_FALSE(k.duplicate_free);
  EXPECT_TRUE(k.keys.empty());
}

TEST(Keys, GroupingMakesGroupByAKey) {
  PlanNode child;
  child.rels = RelSet::Single(0);
  KeyProperties k = ComputeGroupingKeys(child, Set({1, 2}));
  EXPECT_TRUE(k.duplicate_free);
  EXPECT_TRUE(HasKeySubset(k.keys, Set({1, 2})));
}

TEST(Keys, GroupingKeepsContainedChildKeys) {
  PlanNode child;
  KeySet child_keys = {Set({1})};
  child.keys_ = &child_keys;
  child.duplicate_free = true;
  KeyProperties k = ComputeGroupingKeys(child, Set({1, 2}));
  // The child key {1} ⊆ G+ survives and subsumes {1,2}.
  EXPECT_TRUE(HasKeySubset(k.keys, Set({1})));
  EXPECT_EQ(k.keys.size(), 1u);
}

TEST(Keys, NeedsGroupingFig7) {
  PlanNode t;
  KeySet t_keys = {Set({0})};
  t.keys_ = &t_keys;
  t.duplicate_free = true;
  EXPECT_FALSE(NeedsGrouping(Set({0, 1}), t));  // key within G: no grouping
  EXPECT_TRUE(NeedsGrouping(Set({1}), t));      // no key within G

  t.duplicate_free = false;
  EXPECT_TRUE(NeedsGrouping(Set({0, 1}), t));  // duplicates: must group
}

}  // namespace
}  // namespace eadp
