// Plan-cache concurrency: probe/insert/evict races from many threads
// (run under TSan in CI), handle liveness under eviction churn, and the
// differential pin that cache-aware batch planning stays cost-identical
// to the sequential cache-off loop.

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "plangen/parallel.h"
#include "plangen/plan_cache.h"
#include "queries/fingerprint.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

Query ShapeQuery(int shape) {
  // A small pool of distinct shapes, reachable by index from any thread
  // (Query is move-only, so every thread regenerates its own instances —
  // generation is deterministic in (options, seed)).
  GeneratorOptions gen;
  gen.num_relations = 4 + shape % 5;
  return GenerateRandomQuery(gen, 100 + static_cast<uint64_t>(shape) / 5);
}

constexpr int kShapes = 12;

TEST(PlanCacheConcurrency, ConcurrentProbeInsertEvictIsConsistent) {
  // Tiny capacity forces continuous eviction while 8 threads probe,
  // insert and *use* served plans; every served cost must match the
  // thread's own fresh run. TSan validates the locking, ASan the
  // eviction-vs-handle lifetime.
  PlanCacheOptions opts;
  opts.capacity = 4;  // << kShapes: constant churn
  opts.num_shards = 2;
  PlanCache cache(opts);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 60;
  std::atomic<int> mismatches{0};

  std::vector<double> want_cost(kShapes);
  for (int s = 0; s < kShapes; ++s) {
    OptimizerOptions options;
    want_cost[s] = OptimizeAdaptive(ShapeQuery(s), options).plan->cost;
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &want_cost, &mismatches, t] {
      OptimizerOptions options;
      options.plan_cache = &cache;
      for (int i = 0; i < kItersPerThread; ++i) {
        int shape = (t * 7 + i * 3) % kShapes;
        Query q = ShapeQuery(shape);
        OptimizeResult r = OptimizeAdaptive(q, options);
        // Deep-use the (possibly cached, possibly just-evicted) plan.
        if (r.plan == nullptr || r.plan->cost != want_cost[shape] ||
            r.plan->NodeCount() <= 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.inserts + stats.duplicate_inserts, stats.misses);
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(PlanCacheConcurrency, RacingInsertsOfOneShapeShareOneEntry) {
  // All threads plan the *same* shape simultaneously: first writer wins,
  // everyone else converges on that entry, and every result is
  // cost-identical (determinism makes the race benign; this pins it).
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<double> costs(kThreads, -1);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &costs, t] {
      OptimizerOptions options;
      options.plan_cache = &cache;
      costs[t] = OptimizeAdaptive(ShapeQuery(0), options).plan->cost;
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(costs[t], costs[0]);
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(PlanCacheConcurrency, InvalidateRacingLookupsIsSafe) {
  // Serving threads keep probing while another thread repeatedly drops
  // everything: lookups may miss but served plans stay valid (their
  // arenas are handle-owned, not cache-owned).
  PlanCache cache;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  OptimizerOptions options;
  double want = OptimizeAdaptive(ShapeQuery(1), options).plan->cost;

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &stop, &bad, want] {
      OptimizerOptions cached;
      cached.plan_cache = &cache;
      while (!stop.load(std::memory_order_relaxed)) {
        OptimizeResult r = OptimizeAdaptive(ShapeQuery(1), cached);
        if (r.plan == nullptr || r.plan->cost != want) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    cache.Invalidate();
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  cache.Invalidate();
  EXPECT_EQ(cache.Snapshot().entries, 0u);
}

TEST(PlanCacheConcurrency, OptimizeBatchCacheDifferential) {
  // The acceptance pin at the batch level: a Zipf-ish repeated stream
  // planned through a shared cache at 2/4/8 threads is bit-identical in
  // cost to the sequential cache-off loop, and repeats actually hit.
  std::vector<Query> stream;
  for (int i = 0; i < 60; ++i) stream.push_back(ShapeQuery(i % kShapes));

  OptimizerOptions cache_off;
  BatchResult reference = OptimizeBatch(stream, cache_off, 1);
  ASSERT_EQ(reference.stats.cache_hits, 0);

  for (int threads : {2, 4, 8}) {
    PlanCache cache;
    OptimizerOptions cache_on;
    cache_on.plan_cache = &cache;

    BatchResult cold = OptimizeBatch(stream, cache_on, threads);
    BatchResult warm = OptimizeBatch(stream, cache_on, threads);
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_NE(reference.results[i].plan, nullptr);
      EXPECT_EQ(cold.results[i].plan->cost, reference.results[i].plan->cost)
          << "query " << i << " at " << threads << " threads (cold)";
      EXPECT_EQ(warm.results[i].plan->cost, reference.results[i].plan->cost)
          << "query " << i << " at " << threads << " threads (warm)";
      EXPECT_TRUE(warm.results[i].stats.cache_hit);
    }
    // Cold batch: exactly one planning run per distinct shape reaches the
    // cache; the stream's repeats hit either the entry or the
    // first-writer-wins dedup (both end as one entry per shape).
    EXPECT_EQ(cache.Snapshot().entries, static_cast<size_t>(kShapes));
    EXPECT_EQ(warm.stats.cache_hits, static_cast<int>(stream.size()));
    EXPECT_GT(cold.stats.cache_hits, 0);
  }
}

}  // namespace
}  // namespace eadp
