// The specialization families of Fig. 3, constructed explicitly at the
// execution level (one test per equivalence family and side), plus the
// top-grouping-elimination identities (Eqv. 42 family) and the grouping
// over union decompositions (Eqvs. 45/46) used by the appendix proofs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/operators.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }

/// Random side tables (with NULLs and duplicates) keyed by a seed.
Table RandomSide(uint64_t seed, const std::string& g, const std::string& j,
                 const std::string& a) {
  Rng rng(seed);
  Table t({g, j, a});
  int rows = static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < rows; ++i) {
    auto value = [&](double null_p, int domain) {
      return rng.Bernoulli(null_p)
                 ? Value::Null()
                 : Value::Int(rng.UniformInt(0, domain - 1));
    };
    t.AddRow({value(0.1, 3), value(0.15, 4), value(0.2, 6)});
  }
  return t;
}

ExecPredicate Pred() { return {{"j1", "j2", CmpOp::kEq}}; }

using JoinFn = Table (*)(const Table&, const Table&, const ExecPredicate&);

Table PlainInner(const Table& a, const Table& b, const ExecPredicate& p) {
  return InnerJoin(a, b, p);
}
Table PlainLeftOuter(const Table& a, const Table& b, const ExecPredicate& p) {
  return LeftOuterJoin(a, b, p);
}
Table PlainFullOuter(const Table& a, const Table& b, const ExecPredicate& p) {
  return FullOuterJoin(a, b, p);
}

struct FamilyParam {
  const char* name;
  JoinFn plain;
  bool left_needs_defaults;   // grouped left side needs defaults (K)
  bool right_needs_defaults;  // grouped right side needs defaults (E, K)
  bool right_push_ok;         // E right push and K both; semijoins: no
};

using SpecParam = std::tuple<int, uint64_t>;

class SpecializationTest : public ::testing::TestWithParam<SpecParam> {
 protected:
  // Families indexed by the first tuple element.
  FamilyParam Family() const {
    static const FamilyParam kFamilies[] = {
        {"inner", &PlainInner, false, false, true},
        {"louter", &PlainLeftOuter, false, true, true},
        {"fouter", &PlainFullOuter, true, true, true},
    };
    return kFamilies[std::get<0>(GetParam())];
  }
  uint64_t Seed() const { return std::get<1>(GetParam()); }

  Table E1() const { return RandomSide(Seed() * 3 + 1, "g1", "j1", "a1"); }
  Table E2() const { return RandomSide(Seed() * 5 + 2, "g2", "j2", "a2"); }

  Table JoinOf(const Table& l, const Table& r,
               const DefaultVector& dl = {},
               const DefaultVector& dr = {}) const {
    switch (std::get<0>(GetParam())) {
      case 0:
        return InnerJoin(l, r, Pred());
      case 1:
        return LeftOuterJoin(l, r, Pred(), dr);
      default:
        return FullOuterJoin(l, r, Pred(), dl, dr);
    }
  }
};

// Eager/Lazy Group-by (Eqvs. 16/17/18): F2 empty, no count needed when only
// decomposable aggregates of the left side are involved... the paper's
// variant still carries no count; correctness requires the join not to
// duplicate groups — which holds when grouping includes the join attribute
// and the aggregate is duplicate-agnostic (min/max).
TEST_P(SpecializationTest, EagerGroupByLeftMinMax) {
  Table e1 = E1();
  Table e2 = E2();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("m", AggKind::kMin, "a1")};
  Table lhs = GroupBy(JoinOf(e1, e2), {"g1", "j1"}, f);

  Table grouped = GroupBy(e1, {"g1", "j1"},
                          {ExecAggregate::Simple("mp", AggKind::kMin, "a1")});
  // Γ result carries mp; defaults: min over {⊥} is NULL -> plain padding.
  Table joined = JoinOf(grouped, e2);
  Table rhs = GroupBy(joined, {"g1", "j1"},
                      {ExecAggregate::Simple("m", AggKind::kMin, "mp")});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << Family().name << "\nlhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

// Eager/Lazy Count (Eqvs. 22/23/24): F1 empty; only the count is pushed and
// the right side's aggregates get scaled by it.
TEST_P(SpecializationTest, EagerCountLeft) {
  Table e1 = E1();
  Table e2 = E2();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("s2", AggKind::kSum, "a2")};
  Table lhs = GroupBy(JoinOf(e1, e2), {"g1", "g2"}, f);

  Table grouped = GroupBy(e1, {"g1", "j1"},
                          {ExecAggregate::Simple("c1", AggKind::kCountStar)});
  DefaultVector dl = {{"c1", I(1)}};
  Table joined = JoinOf(grouped, e2, Family().left_needs_defaults
                                         ? dl
                                         : DefaultVector{});
  ExecAggregate s2;
  s2.output = "s2";
  s2.kind = AggKind::kSum;
  s2.arg = "a2";
  s2.multipliers = {"c1"};
  ExecAggregate c;
  c.output = "c";
  c.kind = AggKind::kCountStar;
  c.multipliers = {"c1"};
  Table rhs = GroupBy(joined, {"g1", "g2"}, {c, s2});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << Family().name << "\nlhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

// Double Eager/Lazy (Eqvs. 28..33): grouping both sides, aggregates only on
// the left; the right contributes only its count.
TEST_P(SpecializationTest, DoubleEager) {
  if (!Family().right_push_ok) GTEST_SKIP();
  Table e1 = E1();
  Table e2 = E2();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("s1", AggKind::kSum, "a1"),
      ExecAggregate::Simple("c", AggKind::kCountStar)};
  Table lhs = GroupBy(JoinOf(e1, e2), {"g1", "g2"}, f);

  Table g1t = GroupBy(e1, {"g1", "j1"},
                      {ExecAggregate::Simple("s1p", AggKind::kSum, "a1"),
                       ExecAggregate::Simple("c1", AggKind::kCountStar)});
  Table g2t = GroupBy(e2, {"g2", "j2"},
                      {ExecAggregate::Simple("c2", AggKind::kCountStar)});
  DefaultVector dl = {{"c1", I(1)}};
  DefaultVector dr = {{"c2", I(1)}};
  Table joined = JoinOf(g1t, g2t,
                        Family().left_needs_defaults ? dl : DefaultVector{},
                        Family().right_needs_defaults ? dr : DefaultVector{});
  ExecAggregate s1;
  s1.output = "s1";
  s1.kind = AggKind::kSum;
  s1.arg = "s1p";
  s1.multipliers = {"c2"};
  ExecAggregate c;
  c.output = "c";
  c.kind = AggKind::kCountStar;
  c.multipliers = {"c1", "c2"};
  Table rhs = GroupBy(joined, {"g1", "g2"}, {s1, c});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << Family().name << "\nlhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

std::string SpecParamName(const ::testing::TestParamInfo<SpecParam>& info) {
  static const char* kNames[] = {"inner", "louter", "fouter"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Families, SpecializationTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range<uint64_t>(0, 10)),
                         SpecParamName);

// Eqv. 45: grouping distributes over a union with disjoint group values.
TEST(UnionEquivalences, Eqv45DisjointGroups) {
  Table a({"g", "v"});
  a.AddRow({I(1), I(10)});
  a.AddRow({I(1), I(20)});
  Table b({"g", "v"});
  b.AddRow({I(2), I(5)});
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("s", AggKind::kSum, "v"),
      ExecAggregate::Simple("c", AggKind::kCountStar)};
  Table lhs = GroupBy(UnionAll(a, b), {"g"}, f);
  Table rhs = UnionAll(GroupBy(a, {"g"}, f), GroupBy(b, {"g"}, f));
  EXPECT_TRUE(Table::BagEquals(lhs, rhs));
}

// Eqv. 46: with overlapping groups, an outer re-aggregation merges the
// partial results (F decomposed into F1/F2).
TEST(UnionEquivalences, Eqv46OverlappingGroups) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Table a({"g", "v"});
    Table b({"g", "v"});
    for (int i = 0; i < 6; ++i) {
      a.AddRow({I(rng.UniformInt(0, 2)), I(rng.UniformInt(0, 9))});
      b.AddRow({I(rng.UniformInt(0, 2)), I(rng.UniformInt(0, 9))});
    }
    std::vector<ExecAggregate> f = {
        ExecAggregate::Simple("s", AggKind::kSum, "v"),
        ExecAggregate::Simple("c", AggKind::kCountStar)};
    Table lhs = GroupBy(UnionAll(a, b), {"g"}, f);
    // Inner decomposition F1 then outer F2.
    std::vector<ExecAggregate> f1 = {
        ExecAggregate::Simple("sp", AggKind::kSum, "v"),
        ExecAggregate::Simple("cp", AggKind::kCountStar)};
    std::vector<ExecAggregate> f2 = {
        ExecAggregate::Simple("s", AggKind::kSum, "sp"),
        ExecAggregate::Simple("c", AggKind::kSum, "cp")};
    Table rhs = GroupBy(
        UnionAll(GroupBy(a, {"g"}, f1), GroupBy(b, {"g"}, f1)), {"g"}, f2);
    EXPECT_TRUE(Table::BagEquals(lhs, rhs)) << trial;
  }
}

// Eqv. 42: with G a key of a duplicate-free input, grouping degenerates to
// a per-row map.
TEST(TopElimination, Eqv42SingleRowGroups) {
  Table t({"k", "a"});
  t.AddRow({I(1), I(10)});
  t.AddRow({I(2), Value::Null()});
  t.AddRow({I(3), I(30)});
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("s", AggKind::kSum, "a"),
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("ca", AggKind::kCount, "a")};
  Table grouped = GroupBy(t, {"k"}, f);

  std::vector<MapExpr> exprs;
  MapExpr s;
  s.output = "s";
  s.kind = MapExpr::Kind::kMulCounts;  // no counts: identity with NULL prop
  s.arg = "a";
  exprs.push_back(s);
  MapExpr c;
  c.output = "c";
  c.kind = MapExpr::Kind::kCountProduct;  // no counts: constant 1
  exprs.push_back(c);
  MapExpr ca;
  ca.output = "ca";
  ca.kind = MapExpr::Kind::kCountIfNotNull;
  ca.arg = "a";
  exprs.push_back(ca);
  Table mapped = Project(Map(t, exprs), {"k", "s", "c", "ca"});
  EXPECT_TRUE(Table::BagEquals(grouped, mapped))
      << grouped.ToString() << mapped.ToString();
}

}  // namespace
}  // namespace eadp
