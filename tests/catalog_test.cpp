#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

Catalog TwoRelations() {
  Catalog c;
  int r0 = c.AddRelation("R0", 100);
  int r1 = c.AddRelation("R1", 2000);
  c.AddAttribute(r0, "R0.a", 100);
  c.AddAttribute(r0, "R0.b", 10);
  c.AddAttribute(r1, "R1.a", 2000);
  c.DeclareKey(r0, AttrSet::Single(0));
  return c;
}

TEST(Catalog, BasicAccess) {
  Catalog c = TwoRelations();
  EXPECT_EQ(c.num_relations(), 2);
  EXPECT_EQ(c.num_attributes(), 3);
  EXPECT_EQ(c.relation(0).name, "R0");
  EXPECT_DOUBLE_EQ(c.relation(1).cardinality, 2000);
  EXPECT_EQ(c.attribute(1).name, "R0.b");
  EXPECT_DOUBLE_EQ(c.DistinctOf(1), 10);
}

TEST(Catalog, AttributeOwnership) {
  Catalog c = TwoRelations();
  EXPECT_EQ(c.RelationOf(0), 0);
  EXPECT_EQ(c.RelationOf(2), 1);
  EXPECT_EQ(c.relation(0).attributes.Count(), 2);
  EXPECT_TRUE(c.relation(0).attributes.Contains(1));
}

TEST(Catalog, RelationsOfAttrSet) {
  Catalog c = TwoRelations();
  AttrSet attrs;
  attrs.Add(1);
  attrs.Add(2);
  RelSet rels = c.RelationsOf(attrs);
  EXPECT_TRUE(rels.Contains(0));
  EXPECT_TRUE(rels.Contains(1));
  EXPECT_EQ(rels.Count(), 2);
}

TEST(Catalog, AttributesOfRelSet) {
  Catalog c = TwoRelations();
  AttrSet attrs = c.AttributesOf(RelSet::Single(0));
  EXPECT_EQ(attrs.Count(), 2);
  EXPECT_TRUE(attrs.Contains(0));
  EXPECT_TRUE(attrs.Contains(1));
}

TEST(Catalog, DeclareKeyMarksDuplicateFree) {
  Catalog c = TwoRelations();
  EXPECT_TRUE(c.relation(0).duplicate_free);
  EXPECT_FALSE(c.relation(1).duplicate_free);
  ASSERT_EQ(c.relation(0).keys.size(), 1u);
  EXPECT_EQ(c.relation(0).keys[0], AttrSet::Single(0));
}

TEST(Catalog, AttrSetToString) {
  Catalog c = TwoRelations();
  AttrSet attrs;
  attrs.Add(0);
  attrs.Add(2);
  EXPECT_EQ(c.AttrSetToString(attrs), "R0.a,R1.a");
}

}  // namespace
}  // namespace eadp
