// Groupjoin equivalences (paper A.5): the groupjoin/outerjoin
// correspondence (Eqvs. 98–100) and pushing grouping into the groupjoin's
// left argument (Eqvs. 39–41 / 101–103).

#include <gtest/gtest.h>

#include "exec/operators.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Table MakeLeft() {
  Table t({"g1", "j1", "a1"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(1), I(4)});
  t.AddRow({I(1), I(2), I(8)});
  t.AddRow({I(2), I(5), I(16)});  // no partners
  return t;
}

Table MakeRight() {
  Table t({"j2", "a2"});
  t.AddRow({I(1), I(3)});
  t.AddRow({I(1), I(5)});
  t.AddRow({I(2), I(7)});
  t.AddRow({I(9), I(9)});  // never joins
  return t;
}

ExecPredicate Pred() { return {{"j1", "j2", CmpOp::kEq}}; }

TEST(GroupjoinEquivalence, Eqv100GroupjoinAsOuterJoinWithDefaults) {
  // e1 Z_{J1=J2;F} e2 ≡ Π_C(e1 E^{F({⊥})}_{J1=J2} Γ_{J2;F}(e2)), with the
  // count(*)(∅) := 1 correction expressed through the default vector:
  // count defaults to 0... NOTE: the paper's correction sets the E default
  // for count(*) to the value on the EMPTY group, which the direct Z
  // computes as 0; hence default 0 for counts, NULL for sum.
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("n", AggKind::kCountStar),
      ExecAggregate::Simple("s", AggKind::kSum, "a2")};
  Table lhs = GroupJoin(MakeLeft(), MakeRight(), Pred(), f);

  Table grouped = GroupBy(MakeRight(), {"j2"}, f);
  DefaultVector defaults = {{"n", I(0)}};  // s stays NULL
  Table joined = LeftOuterJoin(MakeLeft(), grouped, Pred(), defaults);
  Table rhs = Project(joined, {"g1", "j1", "a1", "n", "s"});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(GroupjoinEquivalence, Eqv40PushGroupingIntoLeftArgument) {
  // ΓG;F(e1 Z e2) ≡ ΓG;F21(Γ_{G+1;F11}(e1) Z e2) — grouping before the
  // groupjoin; F here aggregates only left attributes (F2 reads the
  // groupjoin output, tested in the split variant below).
  std::vector<ExecAggregate> gj = {
      ExecAggregate::Simple("n", AggKind::kCountStar)};
  Table lhs =
      GroupBy(GroupJoin(MakeLeft(), MakeRight(), Pred(), gj), {"g1"},
              {ExecAggregate::Simple("b1", AggKind::kSum, "a1")});

  Table grouped_left =
      GroupBy(MakeLeft(), {"g1", "j1"},
              {ExecAggregate::Simple("b1p", AggKind::kSum, "a1")});
  Table joined = GroupJoin(grouped_left, MakeRight(), Pred(), gj);
  Table rhs = GroupBy(joined, {"g1"},
                      {ExecAggregate::Simple("b1", AggKind::kSum, "b1p")});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(GroupjoinEquivalence, Eqv39GroupbyCountWithAggregateOverGroupjoinResult) {
  // F2 reads the groupjoin's output attribute n: F2 ⊗ c1 scales it.
  std::vector<ExecAggregate> gj = {
      ExecAggregate::Simple("n", AggKind::kCountStar)};
  Table lhs = GroupBy(GroupJoin(MakeLeft(), MakeRight(), Pred(), gj), {"g1"},
                      {ExecAggregate::Simple("c", AggKind::kCountStar),
                       ExecAggregate::Simple("b1", AggKind::kSum, "a1"),
                       ExecAggregate::Simple("tn", AggKind::kSum, "n")});

  Table grouped_left =
      GroupBy(MakeLeft(), {"g1", "j1"},
              {ExecAggregate::Simple("c1", AggKind::kCountStar),
               ExecAggregate::Simple("b1p", AggKind::kSum, "a1")});
  Table joined = GroupJoin(grouped_left, MakeRight(), Pred(), gj);
  ExecAggregate tn;  // sum(n) ⊗ c1
  tn.output = "tn";
  tn.kind = AggKind::kSum;
  tn.arg = "n";
  tn.multipliers = {"c1"};
  Table rhs = GroupBy(joined, {"g1"},
                      {ExecAggregate::Simple("c", AggKind::kSum, "c1"),
                       ExecAggregate::Simple("b1", AggKind::kSum, "b1p"), tn});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(GroupjoinEquivalence, Eqv41EagerCountOnly) {
  // F1 empty: only the count is pushed.
  std::vector<ExecAggregate> gj = {
      ExecAggregate::Simple("s", AggKind::kSum, "a2")};
  Table lhs = GroupBy(GroupJoin(MakeLeft(), MakeRight(), Pred(), gj), {"g1"},
                      {ExecAggregate::Simple("ts", AggKind::kSum, "s")});

  Table grouped_left = GroupBy(
      MakeLeft(), {"g1", "j1"},
      {ExecAggregate::Simple("c1", AggKind::kCountStar)});
  Table joined = GroupJoin(grouped_left, MakeRight(), Pred(), gj);
  ExecAggregate ts;
  ts.output = "ts";
  ts.kind = AggKind::kSum;
  ts.arg = "s";
  ts.multipliers = {"c1"};
  Table rhs = GroupBy(joined, {"g1"}, {ts});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(GroupjoinEquivalence, GroupjoinPreservesLeftMultiplicity) {
  // Duplicate left rows stay duplicated: |Z| = |e1| exactly.
  Table left({"j1"});
  left.AddRow({I(1)});
  left.AddRow({I(1)});
  std::vector<ExecAggregate> gj = {
      ExecAggregate::Simple("n", AggKind::kCountStar)};
  Table out = GroupJoin(left, MakeRight(), {{"j1", "j2", CmpOp::kEq}}, gj);
  EXPECT_EQ(out.NumRows(), 2u);
}

}  // namespace
}  // namespace eadp
