// Dominance pruning (Sec. 4.6): Def. 4 criteria and ablations.

#include <gtest/gtest.h>

#include "plangen/dp_table.h"
#include "plangen/plangen.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

/// Arena for the hand-built nodes of this suite. Interning the key sets
/// here mirrors production: equal key sets share a pointer, so these tests
/// also exercise the pointer-compare fast path of Dominates().
PlanArena& TestArena() {
  static PlanArena arena;
  return arena;
}

PlanPtr MakePlan(double cost, double card, KeySet keys, bool dup_free) {
  PlanNode* p = TestArena().NewNode();
  p->op = PlanOp::kJoin;
  p->rels = RelSet::FirstN(2);
  p->cost = cost;
  p->cardinality = card;
  p->raw_cardinality = card;
  p->keys_ = TestArena().InternKeys(keys);
  p->duplicate_free = dup_free;
  return p;
}

TEST(Dominance, RequiresAllThreeCriteria) {
  AttrSet k0 = AttrSet::Single(0);
  PlanPtr strong = MakePlan(10, 100, {k0}, true);
  // Worse on every axis: dominated.
  EXPECT_TRUE(Dominates(*strong, *MakePlan(11, 100, {k0}, true)));
  EXPECT_TRUE(Dominates(*strong, *MakePlan(10, 200, {k0}, true)));
  EXPECT_TRUE(Dominates(*strong, *MakePlan(10, 100, {}, false)));
  // Better on one axis: not dominated.
  EXPECT_FALSE(Dominates(*strong, *MakePlan(9, 200, {k0}, true)));
  EXPECT_FALSE(Dominates(*strong, *MakePlan(20, 50, {k0}, true)));
  AttrSet k1 = AttrSet::Single(1);
  EXPECT_FALSE(Dominates(*strong, *MakePlan(20, 200, {k0, k1}, true)));
}

TEST(Dominance, KeySubsetsAreStrongerKnowledge) {
  AttrSet k01;
  k01.Add(0);
  k01.Add(1);
  PlanPtr small_key = MakePlan(10, 100, {AttrSet::Single(0)}, true);
  PlanPtr big_key = MakePlan(10, 100, {k01}, true);
  EXPECT_TRUE(Dominates(*small_key, *big_key));
  EXPECT_FALSE(Dominates(*big_key, *small_key));
}

TEST(Dominance, DuplicateFreenessCounts) {
  PlanPtr dup_free = MakePlan(10, 100, {AttrSet::Single(0)}, true);
  PlanPtr dups = MakePlan(10, 100, {AttrSet::Single(0)}, false);
  EXPECT_TRUE(Dominates(*dup_free, *dups));
  EXPECT_FALSE(Dominates(*dups, *dup_free));
}

TEST(DpTable, InsertPrunedDropsDominatedNewcomer) {
  DpTable table;
  RelSet s = RelSet::FirstN(2);
  table.InsertPruned(s, MakePlan(10, 100, {AttrSet::Single(0)}, true));
  EXPECT_FALSE(
      table.InsertPruned(s, MakePlan(12, 150, {AttrSet::Single(0)}, true)));
  EXPECT_EQ(table.Plans(s).size(), 1u);
}

TEST(DpTable, InsertPrunedEvictsDominatedIncumbents) {
  DpTable table;
  RelSet s = RelSet::FirstN(2);
  table.InsertPruned(s, MakePlan(12, 150, {AttrSet::Single(0)}, true));
  table.InsertPruned(s, MakePlan(14, 90, {AttrSet::Single(0)}, true));
  // Dominates both incumbents.
  EXPECT_TRUE(
      table.InsertPruned(s, MakePlan(10, 80, {AttrSet::Single(0)}, true)));
  EXPECT_EQ(table.Plans(s).size(), 1u);
}

TEST(DpTable, IncomparablePlansCoexist) {
  DpTable table;
  RelSet s = RelSet::FirstN(2);
  table.InsertPruned(s, MakePlan(10, 200, {}, false));   // cheap, big
  table.InsertPruned(s, MakePlan(30, 20, {}, false));    // pricey, small
  table.InsertPruned(s, MakePlan(40, 200, {AttrSet::Single(0)}, true));
  EXPECT_EQ(table.Plans(s).size(), 3u);
}

TEST(DpTable, SingleBestPolicies) {
  DpTable table;
  RelSet s = RelSet::FirstN(2);
  EXPECT_TRUE(table.InsertIfCheaper(s, MakePlan(10, 1, {}, false)));
  EXPECT_FALSE(table.InsertIfCheaper(s, MakePlan(12, 1, {}, false)));
  EXPECT_TRUE(table.InsertIfCheaper(s, MakePlan(8, 1, {}, false)));
  EXPECT_EQ(table.Plans(s).size(), 1u);
  EXPECT_DOUBLE_EQ(table.Best(s)->cost, 8);
  table.ReplaceSingle(s, MakePlan(99, 1, {}, false));
  EXPECT_DOUBLE_EQ(table.Best(s)->cost, 99);
}

TEST(PruningAblation, DroppingCardinalityCriterionBreaksOptimality) {
  // Pruning on cost alone (no cardinality, no keys) must sometimes discard
  // the subplan that leads to the global optimum — demonstrating that both
  // extra criteria of Def. 4 are load-bearing. We scan seeds for a witness.
  GeneratorOptions gen;
  gen.num_relations = 5;
  int witnesses = 0;
  for (uint64_t seed = 0; seed < 40 && witnesses == 0; ++seed) {
    Query q = GenerateRandomQuery(gen, seed);
    OptimizerOptions exact;
    exact.algorithm = Algorithm::kEaPrune;
    OptimizerOptions crippled = exact;
    crippled.prune_without_cardinality = true;
    crippled.prune_without_keys = true;
    double full = Optimize(q, exact).plan->cost;
    double reduced = Optimize(q, crippled).plan->cost;
    EXPECT_GE(reduced, full - 1e-9 * (1 + full));
    if (reduced > full * (1 + 1e-9)) ++witnesses;
  }
  EXPECT_GT(witnesses, 0)
      << "cost-only pruning never lost optimality on 40 random queries; "
         "suspicious";
}

TEST(PruningAblation, KeylessDominanceStaysOptimalOnTheseWorkloads) {
  // Dropping only the key criterion keeps cost+cardinality; it may prune
  // more aggressively. It is not guaranteed optimal in general; we verify
  // it never *beats* the true optimum (sanity) and report when it loses.
  GeneratorOptions gen;
  gen.num_relations = 5;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 90);
    OptimizerOptions exact;
    exact.algorithm = Algorithm::kEaPrune;
    OptimizerOptions no_keys = exact;
    no_keys.prune_without_keys = true;
    double full = Optimize(q, exact).plan->cost;
    double reduced = Optimize(q, no_keys).plan->cost;
    EXPECT_GE(reduced, full - 1e-9 * (1 + full));
  }
}

}  // namespace
}  // namespace eadp
