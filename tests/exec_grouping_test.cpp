// Grouping and aggregate evaluation, including the paper's Fig. 4 example
// for Eqv. 10 (eager/lazy groupby-count on an inner join).

#include <gtest/gtest.h>

#include "exec/operators.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value D(double v) { return Value::Double(v); }
Value N() { return Value::Null(); }

/// Fig. 4: e1(g1, j1, a1) and e2(g2, j2, a2).
Table MakeFig4E1() {
  Table t({"g1", "j1", "a1"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(2), I(4)});
  t.AddRow({I(1), I(2), I(8)});
  return t;
}

Table MakeFig4E2() {
  Table t({"g2", "j2", "a2"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(1), I(4)});
  t.AddRow({I(1), I(2), I(8)});
  return t;
}

TEST(ExecGrouping, Fig4LazyEvaluation) {
  // Left-hand side of Eqv. 10: Γ_{g1,g2;F}(e1 ⋈ e2) with
  // F = c:count(*), b1:sum(a1), b2:sum(a2).
  Table e3 = InnerJoin(MakeFig4E1(), MakeFig4E2(), {{"j1", "j2", CmpOp::kEq}});
  ASSERT_EQ(e3.NumRows(), 4u);
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("b1", AggKind::kSum, "a1"),
      ExecAggregate::Simple("b2", AggKind::kSum, "a2")};
  Table e5 = GroupBy(e3, {"g1", "g2"}, f);
  Table expected({"g1", "g2", "c", "b1", "b2"});
  expected.AddRow({I(1), I(1), I(4), I(16), I(22)});
  EXPECT_TRUE(Table::BagEquals(e5, expected)) << e5.ToString();
}

TEST(ExecGrouping, Fig4EagerEvaluation) {
  // Right-hand side of Eqv. 10: the inner grouping produces
  // e4 = Γ_{g1,j1; c1:count(*), b1':sum(a1)}(e1); after the join, the outer
  // grouping computes c:sum(c1), b1:sum(b1'), b2:sum(c1*a2) — the last one
  // via the ⊗ multiplier machinery.
  std::vector<ExecAggregate> f1 = {
      ExecAggregate::Simple("c1", AggKind::kCountStar),
      ExecAggregate::Simple("b1p", AggKind::kSum, "a1")};
  Table e4 = GroupBy(MakeFig4E1(), {"g1", "j1"}, f1);
  Table expected_e4({"g1", "j1", "c1", "b1p"});
  expected_e4.AddRow({I(1), I(1), I(1), I(2)});
  expected_e4.AddRow({I(1), I(2), I(2), I(12)});
  EXPECT_TRUE(Table::BagEquals(e4, expected_e4)) << e4.ToString();

  Table e6 = InnerJoin(e4, MakeFig4E2(), {{"j1", "j2", CmpOp::kEq}});
  ASSERT_EQ(e6.NumRows(), 3u);

  ExecAggregate b2;
  b2.output = "b2";
  b2.kind = AggKind::kSum;
  b2.arg = "a2";
  b2.multipliers = {"c1"};  // F2 ⊗ c1
  std::vector<ExecAggregate> f2 = {
      ExecAggregate::Simple("c", AggKind::kSum, "c1"),
      ExecAggregate::Simple("b1", AggKind::kSum, "b1p"), b2};
  Table e7 = GroupBy(e6, {"g1", "g2"}, f2);
  Table expected({"g1", "g2", "c", "b1", "b2"});
  expected.AddRow({I(1), I(1), I(4), I(16), I(22)});
  EXPECT_TRUE(Table::BagEquals(e7, expected)) << e7.ToString();
}

TEST(ExecGrouping, CountVariantsIgnoreNulls) {
  Table t({"g", "a"});
  t.AddRow({I(1), I(5)});
  t.AddRow({I(1), N()});
  t.AddRow({I(1), I(5)});
  std::vector<ExecAggregate> aggs = {
      ExecAggregate::Simple("cs", AggKind::kCountStar),
      ExecAggregate::Simple("ca", AggKind::kCount, "a"),
      ExecAggregate::Simple("cnn", AggKind::kCountNN, "a"),
      ExecAggregate::Simple("cd", AggKind::kCount, "a", /*distinct=*/true)};
  Table out = GroupBy(t, {"g"}, aggs);
  Table expected({"g", "cs", "ca", "cnn", "cd"});
  expected.AddRow({I(1), I(3), I(2), I(2), I(1)});
  EXPECT_TRUE(Table::BagEquals(out, expected)) << out.ToString();
}

TEST(ExecGrouping, SumOverOnlyNullsIsNull) {
  Table t({"g", "a"});
  t.AddRow({I(1), N()});
  t.AddRow({I(1), N()});
  Table out = GroupBy(t, {"g"},
                      {ExecAggregate::Simple("s", AggKind::kSum, "a")});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST(ExecGrouping, MinMax) {
  Table t({"g", "a"});
  t.AddRow({I(1), I(4)});
  t.AddRow({I(1), I(-2)});
  t.AddRow({I(1), N()});
  t.AddRow({I(2), N()});
  Table out = GroupBy(t, {"g"},
                      {ExecAggregate::Simple("lo", AggKind::kMin, "a"),
                       ExecAggregate::Simple("hi", AggKind::kMax, "a")});
  Table expected({"g", "lo", "hi"});
  expected.AddRow({I(1), I(-2), I(4)});
  expected.AddRow({I(2), N(), N()});
  EXPECT_TRUE(Table::BagEquals(out, expected)) << out.ToString();
}

TEST(ExecGrouping, AvgIgnoresNullsAndDividesByCountNN) {
  Table t({"g", "a"});
  t.AddRow({I(1), I(3)});
  t.AddRow({I(1), I(5)});
  t.AddRow({I(1), N()});
  Table out =
      GroupBy(t, {"g"}, {ExecAggregate::Simple("m", AggKind::kAvg, "a")});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], D(4.0)));
}

TEST(ExecGrouping, SumDistinct) {
  Table t({"g", "a"});
  t.AddRow({I(1), I(3)});
  t.AddRow({I(1), I(3)});
  t.AddRow({I(1), I(5)});
  Table out = GroupBy(
      t, {"g"}, {ExecAggregate::Simple("s", AggKind::kSum, "a", true)});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], I(8)));
}

TEST(ExecGrouping, NullGroupsTogether) {
  // Paper Sec. 2.3 / Paulley: for grouping, NULL equals NULL.
  Table t({"g", "a"});
  t.AddRow({N(), I(1)});
  t.AddRow({N(), I(2)});
  t.AddRow({I(0), I(4)});
  Table out = GroupBy(t, {"g"},
                      {ExecAggregate::Simple("s", AggKind::kSum, "a")});
  Table expected({"g", "s"});
  expected.AddRow({N(), I(3)});
  expected.AddRow({I(0), I(4)});
  EXPECT_TRUE(Table::BagEquals(out, expected)) << out.ToString();
}

TEST(ExecGrouping, EmptyInputYieldsNoGroups) {
  Table t({"g", "a"});
  Table out = GroupBy(t, {"g"},
                      {ExecAggregate::Simple("s", AggKind::kSum, "a")});
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST(ExecGrouping, GroupByNoColumnsIsSingleGroup) {
  Table t({"a"});
  t.AddRow({I(1)});
  t.AddRow({I(2)});
  Table out =
      GroupBy(t, {}, {ExecAggregate::Simple("s", AggKind::kSum, "a")});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][0], I(3)));
}

TEST(ExecGrouping, MultiplierScalesCountStar) {
  // count(*) ⊗ c = sum(c).
  Table t({"g", "c"});
  t.AddRow({I(1), I(2)});
  t.AddRow({I(1), I(3)});
  ExecAggregate agg;
  agg.output = "n";
  agg.kind = AggKind::kCountStar;
  agg.multipliers = {"c"};
  Table out = GroupBy(t, {"g"}, {agg});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], I(5)));
}

TEST(ExecGrouping, MultiplierScalesCountOfAttribute) {
  // count(a) ⊗ c = sum(a IS NULL ? 0 : c).
  Table t({"g", "a", "c"});
  t.AddRow({I(1), I(7), I(2)});
  t.AddRow({I(1), N(), I(3)});
  ExecAggregate agg;
  agg.output = "n";
  agg.kind = AggKind::kCount;
  agg.arg = "a";
  agg.multipliers = {"c"};
  Table out = GroupBy(t, {"g"}, {agg});
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], I(2)));
}

TEST(ExecGrouping, TwoMultipliersMultiply) {
  Table t({"g", "a", "c1", "c2"});
  t.AddRow({I(1), I(1), I(2), I(3)});
  ExecAggregate agg;
  agg.output = "s";
  agg.kind = AggKind::kSum;
  agg.arg = "a";
  agg.multipliers = {"c1", "c2"};
  Table out = GroupBy(t, {"g"}, {agg});
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], I(6)));
}

TEST(ExecGrouping, GroupJoinWithCountStarOnEmptyGroupIsZero) {
  Table l({"x"});
  l.AddRow({I(1)});
  Table r({"y"});
  std::vector<ExecAggregate> aggs = {
      ExecAggregate::Simple("n", AggKind::kCountStar)};
  Table out = GroupJoin(l, r, {{"x", "y", CmpOp::kEq}}, aggs);
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][1], I(0)));
}

}  // namespace
}  // namespace eadp
