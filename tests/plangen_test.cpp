// Plan generator integration tests: optimality relations between the five
// algorithms, plan well-formedness, statistics.

#include "plangen/plangen.h"

#include <gtest/gtest.h>

#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

OptimizerOptions Opts(Algorithm a) {
  OptimizerOptions o;
  o.algorithm = a;
  return o;
}

class RandomQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryTest, PruningPreservesOptimality) {
  GeneratorOptions gen;
  gen.num_relations = 3 + GetParam() % 4;  // 3..6
  Query q = GenerateRandomQuery(gen, static_cast<uint64_t>(GetParam()));
  OptimizeResult all = Optimize(q, Opts(Algorithm::kEaAll));
  OptimizeResult pruned = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(all.plan, nullptr);
  ASSERT_NE(pruned.plan, nullptr);
  EXPECT_NEAR(all.plan->cost, pruned.plan->cost,
              1e-9 * (1 + all.plan->cost))
      << "EA-All:\n"
      << all.plan->ToString(q.catalog()) << "EA-Prune:\n"
      << pruned.plan->ToString(q.catalog());
  // Pruning must not enlarge the table.
  EXPECT_LE(pruned.stats.table_plans, all.stats.table_plans);
}

TEST_P(RandomQueryTest, HeuristicsAndBaselineNeverBeatOptimal) {
  GeneratorOptions gen;
  gen.num_relations = 3 + GetParam() % 4;
  Query q = GenerateRandomQuery(gen, static_cast<uint64_t>(GetParam()) + 1000);
  double optimal = Optimize(q, Opts(Algorithm::kEaPrune)).plan->cost;
  const double eps = 1e-9 * (1 + optimal);
  for (Algorithm a : {Algorithm::kDphyp, Algorithm::kH1, Algorithm::kH2}) {
    OptimizeResult r = Optimize(q, Opts(a));
    ASSERT_NE(r.plan, nullptr) << AlgorithmName(a);
    EXPECT_GE(r.plan->cost, optimal - eps) << AlgorithmName(a);
  }
}

TEST_P(RandomQueryTest, EagerPlansNeverCostMoreThanBaseline) {
  // The eager search space contains every baseline plan, so the optimum
  // over it can only be cheaper.
  GeneratorOptions gen;
  gen.num_relations = 3 + GetParam() % 4;
  Query q = GenerateRandomQuery(gen, static_cast<uint64_t>(GetParam()) + 2000);
  double optimal = Optimize(q, Opts(Algorithm::kEaPrune)).plan->cost;
  double baseline = Optimize(q, Opts(Algorithm::kDphyp)).plan->cost;
  EXPECT_LE(optimal, baseline * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 24));

TEST(PlanGen, PlanCoversAllRelationsAndOps) {
  GeneratorOptions gen;
  gen.num_relations = 5;
  Query q = GenerateRandomQuery(gen, 7);
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->rels, q.AllRelations());
  // Root is the final map; its child either a final grouping or a join.
  EXPECT_EQ(r.plan->op, PlanOp::kFinalMap);
  // Count binary nodes: must apply every input operator exactly once.
  std::function<int(const PlanNode&)> count_ops = [&](const PlanNode& n) {
    int c = n.IsBinary() ? static_cast<int>(n.op_indices().size()) : 0;
    if (n.left) c += count_ops(*n.left);
    if (n.right) c += count_ops(*n.right);
    return c;
  };
  EXPECT_EQ(count_ops(*r.plan), static_cast<int>(q.ops().size()));
}

TEST(PlanGen, StatsArePopulated) {
  GeneratorOptions gen;
  gen.num_relations = 4;
  Query q = GenerateRandomQuery(gen, 3);
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  EXPECT_GT(r.stats.ccp_count, 0u);
  EXPECT_GT(r.stats.plans_built, 0u);
  EXPECT_GT(r.stats.table_classes, 0u);
  EXPECT_GE(r.stats.optimize_ms, 0.0);
}

TEST(PlanGen, SingleJoinInnerQueryBasics) {
  TwoRelSpec spec;
  spec.kind = OpKind::kJoin;
  spec.mix = AggMix::kSumBoth;
  Query q = MakeTwoRelQuery(spec);
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(r.plan, nullptr);
  // Eager aggregation must win here: grouping R1 (2000 rows, 200 join
  // values) before the join shrinks the join input massively.
  OptimizeResult baseline = Optimize(q, Opts(Algorithm::kDphyp));
  EXPECT_LT(r.plan->cost, baseline.plan->cost);
  EXPECT_GT(r.plan->PushedGroupingCount(), 0);
}

TEST(PlanGen, DistinctAggregateBlocksPushdownOnItsSide) {
  TwoRelSpec spec;
  spec.kind = OpKind::kJoin;
  spec.mix = AggMix::kDistinctRight;  // count(distinct R1.v)
  Query q = MakeTwoRelQuery(spec);
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(r.plan, nullptr);
  // No grouping may be pushed onto R1's side (R1.v not in G+).
  std::function<bool(const PlanNode&)> has_bad_group =
      [&](const PlanNode& n) {
        if (n.op == PlanOp::kGroup && n.rels.Contains(1)) return true;
        if (n.left && has_bad_group(*n.left)) return true;
        if (n.right && has_bad_group(*n.right)) return true;
        return false;
      };
  EXPECT_FALSE(has_bad_group(*r.plan)) << r.plan->ToString(q.catalog());
}

TEST(PlanGen, OuterJoinQueriesProduceEagerPlans) {
  // The headline capability: pushing grouping below a full outerjoin.
  TwoRelSpec spec;
  spec.kind = OpKind::kFullOuter;
  spec.mix = AggMix::kSumBoth;
  Query q = MakeTwoRelQuery(spec);
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(r.plan, nullptr);
  EXPECT_GT(r.plan->PushedGroupingCount(), 0)
      << r.plan->ToString(q.catalog());
  OptimizeResult baseline = Optimize(q, Opts(Algorithm::kDphyp));
  EXPECT_LT(r.plan->cost, baseline.plan->cost);
}

TEST(PlanGen, H2ToleranceExtremesMatchReferencePoints) {
  // F = 1 makes CompareAdjustedCosts the plain comparison, i.e. H1.
  GeneratorOptions gen;
  gen.num_relations = 5;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 500);
    OptimizerOptions h1 = Opts(Algorithm::kH1);
    OptimizerOptions h2 = Opts(Algorithm::kH2);
    h2.h2_tolerance = 1.0;
    EXPECT_DOUBLE_EQ(Optimize(q, h1).plan->cost,
                     Optimize(q, h2).plan->cost);
  }
}

}  // namespace
}  // namespace eadp
