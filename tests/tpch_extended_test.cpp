// Extended TPC-H coverage: Q1 (single relation), Q18 (groupjoin), and
// executable verification of the skeleton queries on mini data.

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

OptimizerOptions Opts(Algorithm a) {
  OptimizerOptions o;
  o.algorithm = a;
  return o;
}

TEST(TpchQ1, SingleRelationAllAlgorithmsAgree) {
  Query q = MakeTpchQ1();
  double reference = -1;
  for (Algorithm a : {Algorithm::kDphyp, Algorithm::kEaAll,
                      Algorithm::kEaPrune, Algorithm::kH1, Algorithm::kH2}) {
    OptimizeResult r = Optimize(q, Opts(a));
    ASSERT_NE(r.plan, nullptr) << AlgorithmName(a);
    if (reference < 0) {
      reference = r.plan->cost;
    } else {
      EXPECT_DOUBLE_EQ(r.plan->cost, reference) << AlgorithmName(a);
    }
  }
}

TEST(TpchQ1, ExecutesWithAvgReconstitution) {
  Query q = MakeTpchQ1();
  Database db = MakeTpchMiniDatabase(q, 2e-4, 7);  // ~1200 lineitems
  OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
  Table got = ExecutePlan(r.plan, q, db);
  Table want = ExecuteCanonical(q, db);
  EXPECT_TRUE(Table::BagEquals(got, want)) << got.ToString();
  EXPECT_LE(got.NumRows(), 6u);  // 3 returnflags x 2 linestatus
  EXPECT_GE(got.NumRows(), 1u);
}

TEST(TpchQ18, GroupJoinQueryOptimizesAndExecutes) {
  Query q = MakeTpchQ18();
  OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
  OptimizeResult base = Optimize(q, Opts(Algorithm::kDphyp));
  ASSERT_NE(ea.plan, nullptr);
  ASSERT_NE(base.plan, nullptr);
  EXPECT_LE(ea.plan->cost, base.plan->cost * (1 + 1e-9));

  Database db = MakeTpchMiniDatabase(q, 1e-3, 11);
  Table got_ea = ExecutePlan(ea.plan, q, db);
  Table got_base = ExecutePlan(base.plan, q, db);
  Table want = ExecuteCanonical(q, db);
  EXPECT_TRUE(Table::BagEquals(got_ea, want));
  EXPECT_TRUE(Table::BagEquals(got_base, want));
}

TEST(TpchQ3Q10, ExecuteOnMiniData) {
  std::vector<Query> queries;
  queries.push_back(MakeTpchQ3());
  queries.push_back(MakeTpchQ10());
  for (const Query& q : queries) {
    Database db = MakeTpchMiniDatabase(q, 5e-4, 3);
    OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
    OptimizeResult base = Optimize(q, Opts(Algorithm::kDphyp));
    Table got_ea = ExecutePlan(ea.plan, q, db);
    Table got_base = ExecutePlan(base.plan, q, db);
    Table want = ExecuteCanonical(q, db);
    EXPECT_TRUE(Table::BagEquals(got_ea, want));
    EXPECT_TRUE(Table::BagEquals(got_base, want));
  }
}

TEST(TpchMiniDatabase, RespectsKeysAndForeignKeys) {
  Query q = MakeTpchQ3();
  Database db = MakeTpchMiniDatabase(q, 1e-3, 5);
  // customer: c_custkey unique.
  const Table& customer = db.tables[0];
  int ck = customer.RequireColumn("c_custkey");
  std::set<int64_t> seen;
  for (const Row& r : customer.rows()) {
    EXPECT_TRUE(seen.insert(r[static_cast<size_t>(ck)].AsInt()).second);
  }
  // orders: o_custkey within customer's key range.
  const Table& orders = db.tables[1];
  int ok = orders.RequireColumn("o_custkey");
  for (const Row& r : orders.rows()) {
    int64_t v = r[static_cast<size_t>(ok)].AsInt();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, static_cast<int64_t>(customer.NumRows()));
  }
  // Scaled sizes: orders ~10x customer.
  EXPECT_GT(orders.NumRows(), customer.NumRows());
}

TEST(TpchMiniDatabase, DeterministicInSeed) {
  Query q = MakeTpchQ3();
  Database a = MakeTpchMiniDatabase(q, 1e-3, 5);
  Database b = MakeTpchMiniDatabase(q, 1e-3, 5);
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_TRUE(Table::BagEquals(a.tables[i], b.tables[i]));
  }
}

}  // namespace
}  // namespace eadp
