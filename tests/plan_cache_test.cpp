// Cross-query plan cache (plangen/plan_cache.h): LRU/eviction semantics,
// forced-collision handling, invalidation, arena liveness past eviction,
// and the differential pin that cached plans are cost-identical and
// validator-clean.

#include "plangen/plan_cache.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "plangen/parallel.h"
#include "plangen/plan_validator.h"
#include "queries/fingerprint.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

Query CorpusQuery(int num_relations, uint64_t seed,
                  QueryTopology topology = QueryTopology::kRandomTree) {
  GeneratorOptions gen;
  gen.num_relations = num_relations;
  gen.topology = topology;
  return GenerateRandomQuery(gen, seed);
}

/// A fingerprint that cannot collide with any real query's: versioned
/// serializations never start with 0xff.
QueryFingerprint SyntheticFingerprint(const std::string& tag) {
  QueryFingerprint fp;
  fp.canonical = std::string("\xff", 1) + tag;
  fp.hash = HashBytes(fp.canonical.data(), fp.canonical.size(), 1);
  fp.hash2 = HashBytes(fp.canonical.data(), fp.canonical.size(), 2);
  return fp;
}

OptimizeResult PlanFresh(const Query& q) {
  OptimizerOptions options;
  return OptimizeAdaptive(q, options);
}

TEST(PlanCache, MissThenHitServesTheIdenticalPlan) {
  PlanCache cache;
  Query q = CorpusQuery(6, 1);
  QueryFingerprint fp = FingerprintQuery(q);

  EXPECT_EQ(cache.Lookup(fp), nullptr);
  OptimizeResult fresh = PlanFresh(q);
  cache.Insert(fp, fresh);

  PlanCache::Handle hit = cache.Lookup(fp);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.plan, fresh.plan);  // the very same arena nodes
  EXPECT_EQ(hit->result.arena, fresh.arena);

  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(PlanCache, LruEvictionDropsTheColdestEntry) {
  PlanCacheOptions opts;
  opts.capacity = 3;
  opts.num_shards = 1;  // single shard: global LRU order is observable
  PlanCache cache(opts);
  ASSERT_EQ(cache.capacity(), 3u);

  std::vector<QueryFingerprint> fps;
  OptimizeResult shared = PlanFresh(CorpusQuery(5, 2));
  for (int i = 0; i < 3; ++i) {
    fps.push_back(SyntheticFingerprint("entry" + std::to_string(i)));
    cache.Insert(fps.back(), shared);
  }
  // Touch entry0 so entry1 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(fps[0]), nullptr);
  cache.Insert(SyntheticFingerprint("entry3"), shared);

  EXPECT_EQ(cache.Snapshot().evictions, 1u);
  EXPECT_NE(cache.Lookup(fps[0]), nullptr);
  EXPECT_EQ(cache.Lookup(fps[1]), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(fps[2]), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCache, ForcedHashCollisionsStayStructurallySeparate) {
  // Two structurally different queries whose fingerprints are *forced*
  // onto identical hashes: the canonical-byte comparison must keep them
  // apart — each probe returns its own plan, never the colliding one.
  PlanCacheOptions opts;
  opts.num_shards = 1;
  PlanCache cache(opts);

  Query qa = CorpusQuery(5, 10);
  Query qb = CorpusQuery(7, 11);
  QueryFingerprint fa = FingerprintQuery(qa);
  QueryFingerprint fb = FingerprintQuery(qb);
  ASSERT_FALSE(fa.Matches(fb));
  fb.hash = fa.hash;    // same shard, same bucket chain
  fb.hash2 = fa.hash2;  // defeat the cheap pre-filter too

  OptimizeResult ra = PlanFresh(qa);
  OptimizeResult rb = PlanFresh(qb);
  cache.Insert(fa, ra);
  cache.Insert(fb, rb);
  EXPECT_EQ(cache.Snapshot().entries, 2u);

  PlanCache::Handle ha = cache.Lookup(fa);
  PlanCache::Handle hb = cache.Lookup(fb);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->result.plan, ra.plan);
  EXPECT_EQ(hb->result.plan, rb.plan);
  EXPECT_NE(ha->result.plan, hb->result.plan);
}

TEST(PlanCache, DuplicateInsertIsFirstWriterWins) {
  PlanCache cache;
  Query q = CorpusQuery(6, 3);
  QueryFingerprint fp = FingerprintQuery(q);
  OptimizeResult first = PlanFresh(q);
  OptimizeResult second = PlanFresh(q);
  ASSERT_NE(first.plan, second.plan);  // distinct arenas, equal costs

  PlanCache::Handle h1 = cache.Insert(fp, first);
  PlanCache::Handle h2 = cache.Insert(fp, second);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->result.plan, first.plan);
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.duplicate_inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, CatalogChangeRewritesTheFingerprint) {
  // Statistics changes make stale entries unreachable (a new fingerprint)
  // rather than wrong; Invalidate() is what actually frees them.
  PlanCache cache;
  Query q = CorpusQuery(6, 4);
  QueryFingerprint before = FingerprintQuery(q);
  cache.Insert(before, PlanFresh(q));

  Catalog* catalog = q.mutable_catalog();
  // Simulate ANALYZE doubling a relation's row estimate.
  int rel = 0;
  double new_card = catalog->relation(rel).cardinality * 2;
  Catalog updated;
  for (int r = 0; r < catalog->num_relations(); ++r) {
    updated.AddRelation(catalog->relation(r).name,
                        r == rel ? new_card : catalog->relation(r).cardinality);
  }
  for (int a = 0; a < catalog->num_attributes(); ++a) {
    updated.AddAttribute(catalog->attribute(a).relation,
                         catalog->attribute(a).name,
                         catalog->attribute(a).distinct);
  }
  for (int r = 0; r < catalog->num_relations(); ++r) {
    for (const AttrSet& key : catalog->relation(r).keys) {
      updated.DeclareKey(r, key);
    }
  }
  *catalog = updated;

  QueryFingerprint after = FingerprintQuery(q);
  EXPECT_FALSE(before.Matches(after));
  EXPECT_EQ(cache.Lookup(after), nullptr);
  EXPECT_NE(cache.Lookup(before), nullptr);  // stale but reachable only by
                                             // the stale fingerprint

  cache.Invalidate();
  EXPECT_EQ(cache.Lookup(before), nullptr);
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(PlanCache, HandleKeepsArenaAliveAcrossEviction) {
  // The eviction race: a served plan must outlive its entry. Capacity 1
  // guarantees the insert below evicts the looked-up entry; the handle
  // (and the OptimizeResult copied from it) must stay fully usable —
  // ASan turns any dangling arena access into a hard failure.
  PlanCacheOptions opts;
  opts.capacity = 1;
  opts.num_shards = 1;
  PlanCache cache(opts);

  Query q = CorpusQuery(7, 5);
  QueryFingerprint fp = FingerprintQuery(q);
  OptimizeResult fresh = PlanFresh(q);
  double want_cost = fresh.plan->cost;
  cache.Insert(fp, std::move(fresh));

  PlanCache::Handle handle = cache.Lookup(fp);
  ASSERT_NE(handle, nullptr);
  OptimizeResult served = handle->result;  // copies the arena shared_ptr

  cache.Insert(SyntheticFingerprint("evictor"), PlanFresh(CorpusQuery(5, 6)));
  ASSERT_EQ(cache.Lookup(fp), nullptr);  // evicted
  EXPECT_EQ(cache.Snapshot().evictions, 1u);

  // Full deep use of the evicted entry through both liveness paths.
  EXPECT_EQ(handle->result.plan->cost, want_cost);
  handle.reset();  // the copied OptimizeResult alone must suffice now
  EXPECT_EQ(served.plan->cost, want_cost);
  EXPECT_TRUE(ValidatePlan(served.plan, q).empty());
  EXPECT_GT(served.plan->NodeCount(), 0);
}

TEST(PlanCache, ShardAndCapacityRounding) {
  PlanCacheOptions opts;
  opts.capacity = 10;
  opts.num_shards = 6;
  PlanCache cache(opts);
  EXPECT_EQ(cache.num_shards(), 8);       // power-of-two rounding
  EXPECT_EQ(cache.capacity(), 16u);       // ceil(10/8) per shard * 8

  PlanCacheOptions tiny;
  tiny.capacity = 0;
  tiny.num_shards = 0;
  PlanCache floor(tiny);
  EXPECT_EQ(floor.num_shards(), 1);
  EXPECT_EQ(floor.capacity(), 1u);
}

TEST(PlanCache, AdaptiveFacadeDifferential) {
  // The acceptance pin: with the cache enabled, every plan — cold (miss +
  // populate) and warm (served) — is bit-identical in cost to the
  // cache-off run, and served plans are validator-clean.
  PlanCache cache;
  OptimizerOptions cache_off;
  OptimizerOptions cache_on;
  cache_on.plan_cache = &cache;

  std::vector<Query> corpus;
  for (int n = 3; n <= 9; ++n) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      corpus.push_back(CorpusQuery(n, seed));
    }
  }
  // Past the exact-DP threshold too: the facade's race result is cached
  // the same way.
  corpus.push_back(CorpusQuery(16, 0, QueryTopology::kChain));
  corpus.push_back(CorpusQuery(16, 0, QueryTopology::kStar));

  for (const Query& q : corpus) {
    OptimizeResult reference = OptimizeAdaptive(q, cache_off);
    OptimizeResult cold = OptimizeAdaptive(q, cache_on);
    OptimizeResult warm = OptimizeAdaptive(q, cache_on);
    ASSERT_NE(reference.plan, nullptr);
    EXPECT_FALSE(cold.stats.cache_hit);
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(cold.plan->cost, reference.plan->cost);
    EXPECT_EQ(warm.plan->cost, reference.plan->cost);
    EXPECT_EQ(warm.plan, cold.plan);  // served from the cold run's arena
    EXPECT_EQ(warm.stats.algorithm, reference.stats.algorithm);
    EXPECT_TRUE(ValidatePlan(warm.plan, q).empty());
  }
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, corpus.size());
  EXPECT_EQ(stats.misses, corpus.size());
  EXPECT_EQ(stats.inserts, corpus.size());
}

TEST(PlanCache, ConcurrentFacadeProbesTheCacheToo) {
  // OptimizeAdaptiveConcurrent shares the wrapper: hit short-circuits the
  // race; miss runs it and populates.
  ThreadPool pool(2);
  PlanCache cache;
  OptimizerOptions options;
  options.plan_cache = &cache;

  Query big = CorpusQuery(20, 3, QueryTopology::kChain);
  OptimizerOptions off;
  OptimizeResult reference = OptimizeAdaptiveConcurrent(big, off, &pool);

  OptimizeResult cold = OptimizeAdaptiveConcurrent(big, options, &pool);
  OptimizeResult warm = OptimizeAdaptiveConcurrent(big, options, &pool);
  ASSERT_NE(reference.plan, nullptr);
  EXPECT_FALSE(cold.stats.cache_hit);
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(cold.plan->cost, reference.plan->cost);
  EXPECT_EQ(warm.plan->cost, reference.plan->cost);
  EXPECT_EQ(cache.Snapshot().hits, 1u);

  // And the sequential-fallback path (null pool) still goes through the
  // cache exactly once, via OptimizeAdaptive — no double counting.
  OptimizeResult fallback = OptimizeAdaptiveConcurrent(big, options, nullptr);
  EXPECT_TRUE(fallback.stats.cache_hit);
  EXPECT_EQ(cache.Snapshot().hits, 2u);
}

TEST(PlanCache, MixedOptionConfigurationsNeverCrossServe) {
  // The cache key covers the planning-relevant option knobs: the same
  // query under different configurations occupies distinct entries, so a
  // shared cache can serve heterogeneous traffic without handing a
  // pruning-ablated (or different-algorithm) plan to a default probe.
  PlanCache cache;
  Query q = CorpusQuery(8, 12);

  OptimizerOptions defaults;
  defaults.plan_cache = &cache;
  OptimizerOptions baseline = defaults;
  baseline.algorithm = Algorithm::kDphyp;  // no eager aggregation: the
                                           // costs genuinely differ

  OptimizerOptions off_a, off_b;
  off_b.algorithm = Algorithm::kDphyp;
  double want_default = OptimizeAdaptive(q, off_a).plan->cost;
  double want_baseline = OptimizeAdaptive(q, off_b).plan->cost;

  // Interleave cold and warm probes of both configurations.
  EXPECT_EQ(OptimizeAdaptive(q, defaults).plan->cost, want_default);
  EXPECT_EQ(OptimizeAdaptive(q, baseline).plan->cost, want_baseline);
  OptimizeResult warm_default = OptimizeAdaptive(q, defaults);
  OptimizeResult warm_baseline = OptimizeAdaptive(q, baseline);
  EXPECT_TRUE(warm_default.stats.cache_hit);
  EXPECT_TRUE(warm_baseline.stats.cache_hit);
  EXPECT_EQ(warm_default.plan->cost, want_default);
  EXPECT_EQ(warm_baseline.plan->cost, want_baseline);
  EXPECT_EQ(cache.Snapshot().entries, 2u);
}

TEST(PlanCache, UnsatisfiableResultsAreNotCached) {
  PlanCache cache;
  OptimizerOptions options;
  options.plan_cache = &cache;
  // A satisfiable query planned through the cache inserts exactly once;
  // the null-plan guard is exercised structurally (no natural
  // unsatisfiable query exists in the generated workload, so pin the
  // invariant that inserts == satisfiable plans).
  Query q = CorpusQuery(5, 9);
  OptimizeResult r = OptimizeAdaptive(q, options);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(cache.Snapshot().inserts, 1u);
}

}  // namespace
}  // namespace eadp
