// Race pins for background re-planning under statistics drift
// (DESIGN.md §14), designed to run under ThreadSanitizer (the CI tsan job
// includes this suite): worker threads probe one shared PlanCache with
// independently drifting statistics — mixing exact hits, re-cost serves,
// inline re-plans and background re-plans on a shared pool — while a
// chaos thread fires Invalidate(). The invariants:
//
//   * every probe returns a plan, and a served plan's arena outlives
//     eviction/invalidation/refresh (handles pin it);
//   * Refresh() racing Lookup()/Insert()/Invalidate() never corrupts a
//     shard (TSan: no data races, no lock-order inversions);
//   * the replan_pending flag admits at most one in-flight background
//     re-plan per entry, and the pool drains before the caches die
//     (declaration order: cache before pool, so the pool's destructor —
//     which runs queued re-plans that touch the cache — finishes first).
//
// Each worker drifts a PRIVATE QuerySpec clone (catalog mutation is not
// thread-safe and production drifts arrive through single-writer stats
// pipelines); the shared state under test is the cache + pool machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "plangen/plan_cache.h"
#include "plangen/plangen.h"
#include "queries/mutation.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_relations = n;
  return GenerateRandomQuery(gen, seed);
}

/// Same gentle drift as drift_test: small cardinality move + consistent
/// distinct repair on one relation.
void DriftGently(Catalog* catalog, Rng* rng) {
  int r = static_cast<int>(rng->UniformInt(0, catalog->num_relations() - 1));
  const RelationDef& rel = catalog->relation(r);
  double card =
      std::max(2.0, rel.cardinality * rng->UniformDouble(0.96, 1.04));
  if (card == rel.cardinality) card += 1.0;
  AttrSet key_attrs;
  for (const AttrSet& key : rel.keys) key_attrs.UnionWith(key);
  catalog->SetCardinality(r, card);
  for (int a : BitsOf(rel.attributes)) {
    double distinct = key_attrs.Contains(a)
                          ? card
                          : std::min(catalog->DistinctOf(a), card);
    catalog->SetDistinct(a, distinct);
  }
}

TEST(DriftConcurrency, BackgroundReplanRacesServingAndInvalidation) {
  // Destruction order matters: the pool's destructor drains re-plan tasks
  // that Put/Refresh into the caches, so the caches must outlive it.
  PlanCache cache;
  ThreadPool replan_pool(3);

  const int kShapes = 4;
  const int kWorkers = 4;
  const int kIters = 40;
  std::vector<Query> shapes;
  for (int s = 0; s < kShapes; ++s) {
    shapes.push_back(MakeQuery(4 + s % 2, 900 + static_cast<uint64_t>(s)));
  }
  // Warm the cache so workers start from structural hits.
  for (const Query& q : shapes) {
    OptimizerOptions warm;
    warm.plan_cache = &cache;
    OptimizeResult r = OptimizeAdaptive(q, warm);
    ASSERT_NE(r.plan, nullptr);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> null_plans{0};

  auto worker = [&](int id) {
    Rng rng(7000 + static_cast<uint64_t>(id));
    // Private drifting replicas of every shape.
    std::vector<QuerySpec> specs;
    for (const Query& q : shapes) specs.push_back(QuerySpec::FromQuery(q));
    for (int i = 0; i < kIters; ++i) {
      size_t s = static_cast<size_t>(rng.UniformInt(0, kShapes - 1));
      if (rng.Bernoulli(0.4)) DriftGently(&specs[s].catalog, &rng);
      Query q = specs[s].ToQuery();
      OptimizerOptions options;
      options.plan_cache = &cache;
      options.replan_pool = &replan_pool;
      // Mix serving policies: workers alternate between re-cost serving
      // (generous band) and strict re-planning, so drifted entries see
      // concurrent avoided serves, background re-plans and refreshes.
      options.drift_tolerance = (i % 2 == 0) ? 1e9 : 0.0;
      OptimizeResult r = OptimizeAdaptive(q, options);
      probes.fetch_add(1, std::memory_order_relaxed);
      if (r.plan == nullptr) {
        null_plans.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Touch the served plan: its arena must be pinned by the result
      // even if Invalidate()/Refresh() just dropped the entry.
      volatile double sink = r.plan->cost + r.plan->cardinality;
      (void)sink;
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) threads.emplace_back(worker, w);
  std::thread chaos([&] {
    Rng rng(31337);
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Invalidate();
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.UniformInt(200, 2000)));
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  chaos.join();

  EXPECT_EQ(null_plans.load(), 0u);
  EXPECT_EQ(probes.load(), static_cast<uint64_t>(kWorkers * kIters));
  // The stream above must actually have exercised the drift machinery.
  PlanCacheStats stats = cache.Snapshot();
  EXPECT_GT(stats.drift_hits, 0u);
}

TEST(DriftConcurrency, ReplanPendingAdmitsOneInFlightReplan) {
  PlanCache cache;
  ThreadPool replan_pool(1);  // serialize re-plans: dedup is observable

  Query q = MakeQuery(5, 321);
  QuerySpec spec = QuerySpec::FromQuery(q);
  OptimizerOptions warm;
  warm.plan_cache = &cache;
  ASSERT_NE(OptimizeAdaptive(q, warm).plan, nullptr);

  Rng rng(5);
  DriftGently(&spec.catalog, &rng);
  Query drifted = spec.ToQuery();

  // A burst of concurrent strict probes of the same drifted entry: each
  // either re-plans inline... no — with a pool attached they all request
  // a background re-plan, and the CAS on replan_pending must collapse the
  // burst to (at most a few) enqueued tasks, every probe serving the
  // stale plan meanwhile.
  const int kProbers = 6;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> served{0};
  for (int t = 0; t < kProbers; ++t) {
    threads.emplace_back([&] {
      OptimizerOptions options;
      options.plan_cache = &cache;
      options.replan_pool = &replan_pool;
      OptimizeResult r = OptimizeAdaptive(drifted, options);
      if (r.plan != nullptr && r.stats.cache_hit &&
          r.stats.replan_background) {
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Wait for the in-flight re-plan(s) to land.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (cache.Snapshot().refreshes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  PlanCacheStats stats = cache.Snapshot();
  EXPECT_GT(served.load(), 0u);
  EXPECT_GE(stats.refreshes, 1u);
  // Dedup bound: strictly fewer re-plans than probes (a fresh entry can
  // re-arm the flag after a refresh lands mid-burst, so exactly-one is
  // too strong — but the burst must not fan out 1:1 into the pool).
  EXPECT_LT(stats.refreshes, static_cast<uint64_t>(kProbers));

  // After the dust settles the entry carries the drifted overlay.
  OptimizerOptions options;
  options.plan_cache = &cache;
  OptimizeResult r = OptimizeAdaptive(drifted, options);
  EXPECT_TRUE(r.stats.cache_hit);
  EXPECT_FALSE(r.stats.replan_background);
}

}  // namespace
}  // namespace eadp
