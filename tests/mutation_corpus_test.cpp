// Tier-1 replay of the committed mutation-fuzz regression corpus
// (tests/corpus/*.corpus, path baked in as EADP_CORPUS_DIR).
//
// Each corpus line is a (seed, chain) survivor folded from a fuzz run:
// the chain replays deterministically onto the materialized seed, and the
// resulting mutant must still pass the full oracle stack — all
// strategies, the plan validator, the exec-backed row equivalence and the
// cache-warm path. Fast by construction (the corpus holds a few dozen
// small mutants), so it runs on every tier-1 invocation and keeps the
// fuzzer's past findings pinned.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "plangen/plan_cache.h"
#include "queries/mutation.h"
#include "tests/fuzz_util.h"

#ifndef EADP_CORPUS_DIR
#error "EADP_CORPUS_DIR must point at the committed corpus directory"
#endif

namespace eadp {
namespace {

std::vector<CorpusEntry> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open corpus file " << path;
  std::vector<CorpusEntry> entries;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    CorpusEntry entry;
    std::string error;
    if (ParseCorpusEntry(line, &entry, &error)) {
      entry.name = StrFormat("%s:%d", path.c_str(), line_no);
      entries.push_back(std::move(entry));
    } else {
      EXPECT_TRUE(error.empty())
          << path << ":" << line_no << ": " << error;  // comments are fine
    }
  }
  return entries;
}

TEST(MutationCorpus, AllEntriesReplayClean) {
  std::vector<CorpusEntry> corpus =
      LoadCorpus(std::string(EADP_CORPUS_DIR) + "/mutation.corpus");
  // The acceptance floor: at least 10 structurally distinct survivors
  // stay committed.
  ASSERT_GE(corpus.size(), 10u);

  PlanCache cache;
  FuzzOracleOptions oracle;
  oracle.cache = &cache;
  int replayed = 0;
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.name + ": " + FormatCorpusEntry(entry));
    QuerySpec seed_spec = QuerySpec::FromQuery(MaterializeSeed(entry.seed));
    ASSERT_TRUE(CheckSpecValid(seed_spec).empty());
    QuerySpec mutant =
        MutationEngine::Replay(seed_spec, entry.chain, entry.chain.size());
    std::vector<std::string> violations = CheckSpecValid(mutant);
    ASSERT_TRUE(violations.empty())
        << "chain no longer replays to a valid spec: " << violations[0];
    FuzzOracleReport report = CheckMutant(mutant.ToQuery(), oracle);
    for (const std::string& f : report.failures) {
      ADD_FAILURE() << f;
    }
    ++replayed;
  }
  EXPECT_EQ(replayed, static_cast<int>(corpus.size()));
}

}  // namespace
}  // namespace eadp
