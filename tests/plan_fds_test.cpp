// FD derivation through plan operators and the full-FD dominance option.

#include "plangen/plan_fds.h"

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

AttrSet Set(std::initializer_list<int> xs) {
  AttrSet s;
  for (int x : xs) s.Add(x);
  return s;
}

Catalog TwoKeyedRelations() {
  Catalog c;
  int r0 = c.AddRelation("R0", 100);
  c.AddAttribute(r0, "R0.k", 100);  // 0
  c.AddAttribute(r0, "R0.x", 10);   // 1
  c.DeclareKey(r0, Set({0}));
  int r1 = c.AddRelation("R1", 100);
  c.AddAttribute(r1, "R1.k", 100);  // 2
  c.AddAttribute(r1, "R1.x", 10);   // 3
  c.DeclareKey(r1, Set({2}));
  return c;
}

TEST(PlanFds, ScanDerivesKeyFds) {
  Catalog c = TwoKeyedRelations();
  FdSet fds = ScanFds(c, 0);
  EXPECT_TRUE(fds.Implies(Set({0}), Set({1})));
  EXPECT_FALSE(fds.Implies(Set({1}), Set({0})));
}

TEST(PlanFds, InnerJoinAddsEqualityFds) {
  Catalog c = TwoKeyedRelations();
  JoinPredicate pred;
  pred.AddEquality(0, 2);
  FdSet fds = JoinFds(PlanOp::kJoin, ScanFds(c, 0), ScanFds(c, 1), pred);
  // R0.k = R1.k chains: R0.k -> R1.k -> R1.x.
  EXPECT_TRUE(fds.Implies(Set({0}), Set({2})));
  EXPECT_TRUE(fds.Implies(Set({0}), Set({3})));
  EXPECT_TRUE(fds.Implies(Set({2}), Set({1})));
}

TEST(PlanFds, OuterJoinDropsEqualityFdsButKeepsInputFds) {
  Catalog c = TwoKeyedRelations();
  JoinPredicate pred;
  pred.AddEquality(0, 2);
  FdSet fds =
      JoinFds(PlanOp::kLeftOuter, ScanFds(c, 0), ScanFds(c, 1), pred);
  EXPECT_TRUE(fds.Implies(Set({0}), Set({1})));
  EXPECT_TRUE(fds.Implies(Set({2}), Set({3})));
  // The equality does not survive NULL padding.
  EXPECT_FALSE(fds.Implies(Set({0}), Set({2})));
}

TEST(PlanFds, SemiJoinKeepsLeftOnly) {
  Catalog c = TwoKeyedRelations();
  JoinPredicate pred;
  pred.AddEquality(0, 2);
  FdSet fds = JoinFds(PlanOp::kLeftSemi, ScanFds(c, 0), ScanFds(c, 1), pred);
  EXPECT_TRUE(fds.Implies(Set({0}), Set({1})));
  EXPECT_FALSE(fds.Implies(Set({2}), Set({3})));
}

TEST(PlanFds, GroupingRestrictsToSurvivors) {
  FdSet child;
  child.Add(Set({0}), Set({1, 2}));
  child.Add(Set({3}), Set({0}));
  FdSet fds = GroupingFds(child, Set({0, 1}));
  EXPECT_TRUE(fds.Implies(Set({0}), Set({1})));
  // 0 -> 2: attribute 2 is aggregated away.
  EXPECT_FALSE(fds.Implies(Set({0}), Set({2})));
  // 3 -> 0: the lhs is gone.
  EXPECT_FALSE(fds.Implies(Set({3}), Set({0})));
}

TEST(PlanFds, FdsDominateIsClosureBased) {
  FdSet a;
  a.Add(Set({0}), Set({1}));
  a.Add(Set({1}), Set({2}));
  FdSet b;
  b.Add(Set({0}), Set({2}));  // implied transitively by a
  EXPECT_TRUE(FdsDominate(a, b));
  EXPECT_FALSE(FdsDominate(b, a));
}

TEST(FullFdDominance, PreservesOptimalityLikeEaAll) {
  GeneratorOptions gen;
  gen.num_relations = 5;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 300);
    OptimizerOptions all;
    all.algorithm = Algorithm::kEaAll;
    OptimizerOptions fd;
    fd.algorithm = Algorithm::kEaPrune;
    fd.full_fd_dominance = true;
    double cost_all = Optimize(q, all).plan->cost;
    double cost_fd = Optimize(q, fd).plan->cost;
    EXPECT_NEAR(cost_all, cost_fd, 1e-9 * (1 + cost_all)) << "seed " << seed;
  }
}

TEST(FullFdDominance, PrunesNoMoreThanKeyWeakening) {
  // The FD criterion is checked in addition to the key criterion, so the
  // table can only grow (fewer plans dominated).
  GeneratorOptions gen;
  gen.num_relations = 6;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 900);
    OptimizerOptions keys;
    keys.algorithm = Algorithm::kEaPrune;
    OptimizerOptions fd = keys;
    fd.full_fd_dominance = true;
    OptimizeResult with_keys = Optimize(q, keys);
    OptimizeResult with_fd = Optimize(q, fd);
    EXPECT_GE(with_fd.stats.table_plans, with_keys.stats.table_plans);
    EXPECT_NEAR(with_fd.plan->cost, with_keys.plan->cost,
                1e-9 * (1 + with_fd.plan->cost));
  }
}

}  // namespace
}  // namespace eadp
