// Intra-query parallel DP (plangen/parallel_dp.h): the central claim is
// that any dp_threads value produces plans *cost-identical* to the
// sequential run — not approximately, bit-identically — because the
// level-ordered, class-owner-partitioned schedule reproduces the
// sequential DP-table contents exactly (see parallel_dp.h for the
// induction). The suite pins:
//
//   * cost identity at 1/2/4/8 workers across the small corpus (every
//     topology, n = 3..9) and on exact-DP-scale cliques/cycles (n >= 12),
//     for every exhaustive insertion policy;
//   * table-shape identity (ccp_count, table_plans, table_classes,
//     pruning counters) — a much stronger probe than the final cost: a
//     single reordered or cross-served insertion shows up here;
//   * shard-merge interleaving independence — an oversubscribed 1-thread
//     pool, an injected shared pool, and repeated runs all produce the
//     same result (the merge happens at deterministic barriers, so pool
//     scheduling must not be observable);
//   * execution: parallel-built plans (whose subtrees come from different
//     worker builders and name spaces) execute to the same rows as the
//     sequential plan — this is what would break if per-worker
//     generated-column namespaces ever collided;
//   * the kIdp route: subproblems past the group-size gate run the
//     parallel scheduler and stay cost-identical to sequential kIdp;
//   * stats plumbing: dp_workers / barrier wait / pruning counters.
//
// The suite runs under TSan in CI (suite names matched by the tsan job's
// -R regex) — worker shards, the merged table and per-worker builders are
// the objects a data race would corrupt.

#include "plangen/parallel_dp.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "plangen/large_query.h"
#include "plangen/plan_cache.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

std::vector<Query> SmallCorpus() {
  std::vector<Query> corpus;
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    for (int n = 3; n <= 9; n += 2) {
      for (uint64_t seed = 0; seed < 2; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        corpus.push_back(GenerateRandomQuery(gen, seed));
      }
    }
  }
  for (uint64_t seed = 0; seed < 4; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 4 + static_cast<int>(seed);
    corpus.push_back(GenerateRandomQuery(gen, seed));
  }
  return corpus;
}

/// The structural fingerprint of one run that parallelism must not change.
struct RunShape {
  double cost = 0;
  uint64_t ccp_count = 0;
  size_t table_plans = 0;
  size_t table_classes = 0;
  uint64_t pruned_candidates = 0;
  uint64_t pruned_existing = 0;
};

RunShape ShapeOf(const OptimizeResult& r) {
  RunShape s;
  s.cost = r.plan != nullptr ? r.plan->cost : -1;
  s.ccp_count = r.stats.ccp_count;
  s.table_plans = r.stats.table_plans;
  s.table_classes = r.stats.table_classes;
  s.pruned_candidates = r.stats.pruned_candidates;
  s.pruned_existing = r.stats.pruned_existing;
  return s;
}

void ExpectSameShape(const RunShape& seq, const RunShape& par,
                     const std::string& label) {
  EXPECT_EQ(seq.cost, par.cost) << label;  // bit-identical, not near
  EXPECT_EQ(seq.ccp_count, par.ccp_count) << label;
  EXPECT_EQ(seq.table_plans, par.table_plans) << label;
  EXPECT_EQ(seq.table_classes, par.table_classes) << label;
  EXPECT_EQ(seq.pruned_candidates, par.pruned_candidates) << label;
  EXPECT_EQ(seq.pruned_existing, par.pruned_existing) << label;
}

TEST(ParallelDpIdentity, SmallCorpusAllPoliciesAllWorkerCounts) {
  for (const Query& query : SmallCorpus()) {
    for (Algorithm a : {Algorithm::kDphyp, Algorithm::kEaPrune,
                        Algorithm::kH1, Algorithm::kH2}) {
      OptimizerOptions options;
      options.algorithm = a;
      RunShape seq = ShapeOf(Optimize(query, options));
      for (int workers : {2, 4, 8}) {
        options.dp_threads = workers;
        OptimizeResult par = Optimize(query, options);
        ExpectSameShape(seq, ShapeOf(par),
                        std::string(AlgorithmName(a)) + " workers=" +
                            std::to_string(workers) + "\n" +
                            query.ToString());
        if (par.plan != nullptr) {
          EXPECT_TRUE(ValidatePlan(par.plan, query).empty());
        }
      }
    }
  }
}

TEST(ParallelDpIdentity, EaAllKeepsCompleteListsIdentically) {
  // kEaAll's class lists grow exponentially — n <= 7 keeps it cheap while
  // still exercising multi-plan classes (where per-class insertion order
  // matters most: Append never prunes, so any reordering survives to the
  // table_plans count).
  for (QueryTopology t : {QueryTopology::kCycle, QueryTopology::kClique}) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 7;
    Query query = GenerateRandomQuery(gen, 1);
    OptimizerOptions options;
    options.algorithm = Algorithm::kEaAll;
    RunShape seq = ShapeOf(Optimize(query, options));
    options.dp_threads = 4;
    ExpectSameShape(seq, ShapeOf(Optimize(query, options)), "EA-All n=7");
  }
}

TEST(ParallelDpIdentity, ExactDpScaleCliqueAndCycle) {
  // The workloads the parallel path exists for: n >= 12 exact DP.
  for (QueryTopology t : {QueryTopology::kClique, QueryTopology::kCycle}) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = t == QueryTopology::kClique ? 12 : 14;
    Query query = GenerateRandomQuery(gen, 7);
    OptimizerOptions options;  // kEaPrune
    RunShape seq = ShapeOf(Optimize(query, options));
    for (int workers : {2, 8}) {
      options.dp_threads = workers;
      ExpectSameShape(seq, ShapeOf(Optimize(query, options)),
                      std::string("n>=12 workers=") + std::to_string(workers));
    }
  }
}

TEST(ParallelDpIdentity, DenseStarTableSurvivesSharding) {
  // Star is the ccp-dense exact-DP topology (every hub-containing subset
  // is connected: ~k*2^n csg-cmp-pairs, >10k at n=12), so this is the
  // workload where shards genuinely race on overlapping target classes
  // across levels and the merge order matters most. DPhyp keeps the run
  // fast; the shape check covers table size and prune counters too.
  GeneratorOptions gen;
  gen.topology = QueryTopology::kStar;
  gen.num_relations = 12;
  Query query = GenerateRandomQuery(gen, 7);
  OptimizerOptions options;
  options.algorithm = Algorithm::kDphyp;
  RunShape seq = ShapeOf(Optimize(query, options));
  EXPECT_GT(seq.ccp_count, 10000u);
  for (int workers : {2, 4, 8}) {
    options.dp_threads = workers;
    ExpectSameShape(seq, ShapeOf(Optimize(query, options)),
                    std::string("star12 workers=") + std::to_string(workers));
  }
}

TEST(ParallelDpInterleavings, PoolSizeAndInjectionAreUnobservable) {
  GeneratorOptions gen;
  gen.topology = QueryTopology::kClique;
  gen.num_relations = 10;
  Query query = GenerateRandomQuery(gen, 3);
  OptimizerOptions options;
  RunShape seq = ShapeOf(Optimize(query, options));

  // Oversubscribed: 8 logical workers on a 1-thread pool — every merge
  // interleaving collapses to whatever the single pool thread and the
  // caller produce, and the result must not care.
  ThreadPool tiny(1);
  options.dp_threads = 8;
  options.dp_pool = &tiny;
  ExpectSameShape(seq, ShapeOf(Optimize(query, options)), "tiny pool");

  // Injected well-sized pool vs. transient owned pool.
  ThreadPool wide(7);
  options.dp_pool = &wide;
  ExpectSameShape(seq, ShapeOf(Optimize(query, options)), "wide pool");
  options.dp_pool = nullptr;
  ExpectSameShape(seq, ShapeOf(Optimize(query, options)), "owned pool");

  // Repeated runs on one shared pool: deterministic run to run.
  options.dp_pool = &wide;
  RunShape first = ShapeOf(Optimize(query, options));
  for (int i = 0; i < 3; ++i) {
    ExpectSameShape(first, ShapeOf(Optimize(query, options)), "repeat");
  }
}

TEST(ParallelDpExec, ParallelPlansComputeSequentialRows) {
  // Cross-worker plans mix generated columns from several namespaces; row
  // agreement with the sequential plan is what fails if namespaces ever
  // collide (a shared "$p0" between two workers' groupings would
  // mis-merge aggregation state at execution time).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 5 + static_cast<int>(seed % 3);
    Query query = GenerateRandomQuery(gen, seed);
    Database db = GenerateDatabase(query, seed * 31 + 5);
    OptimizerOptions options;  // kEaPrune
    OptimizeResult sequential = Optimize(query, options);
    ASSERT_NE(sequential.plan, nullptr);
    Table want = ExecutePlan(sequential.plan, query, db);
    options.dp_threads = 4;
    OptimizeResult parallel = Optimize(query, options);
    ASSERT_NE(parallel.plan, nullptr);
    EXPECT_EQ(parallel.plan->cost, sequential.plan->cost);
    Table got = ExecutePlan(parallel.plan, query, db);
    EXPECT_TRUE(Table::BagEquals(got, want))
        << "seed " << seed << "\n"
        << parallel.plan->ToString(query.catalog());
  }
}

TEST(ParallelDpIdp, GatedSubproblemsMatchSequentialIdp) {
  // idp_block_size = 10 puts the first subproblem of a 14-relation query
  // at the parallel gate (g >= 10) while the stitch rounds stay below it —
  // both routes run within one optimization and must agree with the fully
  // sequential run. Chains and stars keep kIdp combinable.
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar}) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 14;
    Query query = GenerateRandomQuery(gen, 11);
    OptimizerOptions options;
    options.algorithm = Algorithm::kIdp;
    options.idp_block_size = 10;
    OptimizeResult seq = Optimize(query, options);
    options.dp_threads = 4;
    OptimizeResult par = Optimize(query, options);
    ASSERT_EQ(seq.plan != nullptr, par.plan != nullptr);
    if (seq.plan == nullptr) continue;
    EXPECT_EQ(par.plan->cost, seq.plan->cost);
    EXPECT_EQ(par.stats.ccp_count, seq.stats.ccp_count);
    EXPECT_EQ(par.stats.table_plans, seq.stats.table_plans);
    EXPECT_EQ(par.stats.pruned_candidates, seq.stats.pruned_candidates);
    EXPECT_EQ(par.stats.dp_workers, 4);
    EXPECT_TRUE(ValidatePlan(par.plan, query).empty());
  }
}

TEST(ParallelDpStatsPlumbing, WorkerAndBarrierCountersFilled) {
  GeneratorOptions gen;
  gen.topology = QueryTopology::kClique;
  gen.num_relations = 10;
  Query query = GenerateRandomQuery(gen, 5);

  OptimizerOptions options;
  OptimizeResult seq = Optimize(query, options);
  EXPECT_EQ(seq.stats.dp_workers, 1);
  EXPECT_EQ(seq.stats.dp_barrier_wait_ms, 0);
  // The dominance-pruned clique DP prunes heavily; the counters must see it.
  EXPECT_GT(seq.stats.pruned_candidates + seq.stats.pruned_existing, 0u);

  options.dp_threads = 4;
  OptimizeResult par = Optimize(query, options);
  EXPECT_EQ(par.stats.dp_workers, 4);
  EXPECT_GE(par.stats.dp_barrier_wait_ms, 0);
  EXPECT_EQ(par.stats.pruned_candidates, seq.stats.pruned_candidates);
  EXPECT_EQ(par.stats.pruned_existing, seq.stats.pruned_existing);
  // Worker plans are counted: parallel and sequential build the same trees.
  EXPECT_EQ(par.stats.plans_built, seq.stats.plans_built);
}

TEST(ParallelDpFacade, AdaptiveAndCacheRespectDpThreads) {
  // The facade threads dp_threads through unchanged, and the plan cache
  // keys on it: a sequential entry must not serve a parallel probe.
  GeneratorOptions gen;
  gen.topology = QueryTopology::kCycle;
  gen.num_relations = 9;
  Query query = GenerateRandomQuery(gen, 2);

  OptimizerOptions options;
  OptimizeResult seq = OptimizeAdaptive(query, options);
  options.dp_threads = 4;
  OptimizeResult par = OptimizeAdaptive(query, options);
  ASSERT_NE(seq.plan, nullptr);
  ASSERT_NE(par.plan, nullptr);
  EXPECT_EQ(par.plan->cost, seq.plan->cost);

  PlanCache cache;
  options.plan_cache = &cache;
  options.dp_threads = 1;
  OptimizeResult miss1 = OptimizeAdaptive(query, options);
  EXPECT_FALSE(miss1.stats.cache_hit);
  options.dp_threads = 4;
  OptimizeResult miss2 = OptimizeAdaptive(query, options);
  EXPECT_FALSE(miss2.stats.cache_hit) << "dp_threads must split cache keys";
  OptimizeResult hit = OptimizeAdaptive(query, options);
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_EQ(hit.plan->cost, miss2.plan->cost);
}

}  // namespace
}  // namespace eadp
