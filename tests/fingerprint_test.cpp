// Canonical query fingerprints (queries/fingerprint.h): determinism,
// invariance under relation/attribute renaming, and discrimination on
// every structural dimension the optimizer's outcome depends on.

#include "queries/fingerprint.h"

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

/// A three-relation chain R ⋈ S ⋈ T with per-call knobs, so tests can vary
/// exactly one structural dimension — or only the names — between two
/// otherwise identical queries.
struct ChainSpec {
  std::string names[3] = {"R0", "R1", "R2"};
  std::string attr_suffix = "a";
  double cardinalities[3] = {1000, 2000, 500};
  double distincts[3] = {50, 50, 25};
  double selectivities[2] = {0.01, 0.02};
  OpKind kinds[2] = {OpKind::kJoin, OpKind::kJoin};
  bool key_on_r1 = false;
  std::string agg_output = "s";
};

Query MakeChain(const ChainSpec& spec) {
  Catalog catalog;
  int attrs[3];
  for (int i = 0; i < 3; ++i) {
    int r = catalog.AddRelation(spec.names[i], spec.cardinalities[i]);
    attrs[i] = catalog.AddAttribute(
        r, spec.names[i] + "." + spec.attr_suffix, spec.distincts[i]);
  }
  if (spec.key_on_r1) catalog.DeclareKey(1, AttrSet::Single(attrs[1]));

  JoinPredicate p01;
  p01.AddEquality(attrs[0], attrs[1]);
  auto lower = OpTreeNode::Binary(spec.kinds[0], OpTreeNode::Leaf(0),
                                  OpTreeNode::Leaf(1), p01,
                                  spec.selectivities[0]);
  JoinPredicate p12;
  p12.AddEquality(attrs[1], attrs[2]);
  auto root =
      OpTreeNode::Binary(spec.kinds[1], std::move(lower), OpTreeNode::Leaf(2),
                         p12, spec.selectivities[1]);

  AggregateFunction sum;
  sum.output = spec.agg_output;
  sum.kind = AggKind::kSum;
  sum.arg = attrs[0];
  Query q = Query::FromTree(std::move(catalog), std::move(root),
                            AttrSet::Single(attrs[2]), {sum});
  q.Canonicalize();
  return q;
}

TEST(Fingerprint, DeterministicAcrossIdenticalConstructions) {
  QueryFingerprint a = FingerprintQuery(MakeChain({}));
  QueryFingerprint b = FingerprintQuery(MakeChain({}));
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.hash2, b.hash2);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_TRUE(a.Matches(b));
  EXPECT_FALSE(a.canonical.empty());
}

TEST(Fingerprint, DeterministicOnGeneratedWorkload) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 3 + static_cast<int>(seed % 6);
    Query a = GenerateRandomQuery(gen, seed);
    Query b = GenerateRandomQuery(gen, seed);
    QueryFingerprint fa = FingerprintQuery(a);
    QueryFingerprint fb = FingerprintQuery(b);
    EXPECT_TRUE(fa.Matches(fb)) << "seed " << seed;
    EXPECT_EQ(fa.hash, fb.hash) << "seed " << seed;
  }
}

TEST(Fingerprint, InvariantUnderRelationAndAttributeRenaming) {
  ChainSpec renamed;
  renamed.names[0] = "customer";
  renamed.names[1] = "orders";
  renamed.names[2] = "lineitem";
  renamed.attr_suffix = "key";
  QueryFingerprint original = FingerprintQuery(MakeChain({}));
  QueryFingerprint rebranded = FingerprintQuery(MakeChain(renamed));
  EXPECT_EQ(original.hash, rebranded.hash);
  EXPECT_EQ(original.hash2, rebranded.hash2);
  EXPECT_TRUE(original.Matches(rebranded));
}

TEST(Fingerprint, AggregateOutputLabelsAreFingerprinted) {
  // Unlike relation names, the labels of the result schema are part of
  // what the query asks for: a cached plan emits the cached labels.
  ChainSpec relabeled;
  relabeled.agg_output = "total";
  EXPECT_FALSE(
      FingerprintQuery(MakeChain({})).Matches(FingerprintQuery(MakeChain(relabeled))));
}

TEST(Fingerprint, DiscriminatesEveryStructuralDimension) {
  QueryFingerprint base = FingerprintQuery(MakeChain({}));

  ChainSpec cardinality;
  cardinality.cardinalities[1] = 2001;
  ChainSpec distinct;
  distinct.distincts[2] = 26;
  ChainSpec selectivity;
  selectivity.selectivities[0] = 0.011;
  ChainSpec op_kind;
  op_kind.kinds[1] = OpKind::kLeftOuter;
  ChainSpec key;
  key.key_on_r1 = true;

  for (const ChainSpec& spec :
       {cardinality, distinct, selectivity, op_kind, key}) {
    QueryFingerprint other = FingerprintQuery(MakeChain(spec));
    EXPECT_FALSE(base.Matches(other));
    // The hash should separate them too — equality is the guarantee, but
    // a hash blind to a dimension would funnel that dimension's whole
    // workload into collision chains.
    EXPECT_NE(base.hash, other.hash);
  }
}

TEST(Fingerprint, DiscriminatesTopologyAndPredicateWiring) {
  GeneratorOptions chain;
  chain.topology = QueryTopology::kChain;
  chain.num_relations = 8;
  GeneratorOptions star = chain;
  star.topology = QueryTopology::kStar;
  GeneratorOptions cycle = chain;
  cycle.topology = QueryTopology::kCycle;

  QueryFingerprint fc = FingerprintQuery(GenerateRandomQuery(chain, 7));
  QueryFingerprint fs = FingerprintQuery(GenerateRandomQuery(star, 7));
  QueryFingerprint fy = FingerprintQuery(GenerateRandomQuery(cycle, 7));
  EXPECT_FALSE(fc.Matches(fs));
  EXPECT_FALSE(fc.Matches(fy));
  EXPECT_FALSE(fs.Matches(fy));
}

TEST(Fingerprint, MatchesIgnoresHashesEntirely) {
  // Matches is the equality witness: forcing the hashes of structurally
  // different queries equal (the collision scenario) must not fool it,
  // and divergent hashes on equal canonicals must not split them.
  QueryFingerprint a = FingerprintQuery(MakeChain({}));
  ChainSpec other;
  other.cardinalities[0] = 999;
  QueryFingerprint b = FingerprintQuery(MakeChain(other));

  b.hash = a.hash;
  b.hash2 = a.hash2;
  EXPECT_FALSE(a.Matches(b));

  QueryFingerprint c = FingerprintQuery(MakeChain({}));
  c.hash = ~a.hash;
  c.hash2 = ~a.hash2;
  EXPECT_TRUE(a.Matches(c));
}

TEST(Fingerprint, NoCollisionsAcrossGeneratedCorpus) {
  // 500+ structurally distinct queries: canonicals must all differ, and at
  // 128 hash bits any observed hash collision is a bug, not bad luck.
  std::set<std::string> canonicals;
  std::set<std::pair<uint64_t, uint64_t>> hashes;
  int count = 0;
  for (int n = 3; n <= 9; ++n) {
    for (uint64_t seed = 0; seed < 80; ++seed) {
      GeneratorOptions gen;
      gen.num_relations = n;
      QueryFingerprint fp = FingerprintQuery(GenerateRandomQuery(gen, seed));
      canonicals.insert(fp.canonical);
      hashes.insert({fp.hash, fp.hash2});
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(canonicals.size()), count);
  EXPECT_EQ(canonicals.size(), hashes.size());
}

TEST(Fingerprint, TwoRelCorpusDistinguishesOperatorsAndAggMixes) {
  std::set<std::string> canonicals;
  int count = 0;
  for (OpKind kind : {OpKind::kJoin, OpKind::kLeftSemi, OpKind::kLeftAnti,
                      OpKind::kLeftOuter, OpKind::kFullOuter,
                      OpKind::kGroupJoin}) {
    for (AggMix mix : AllAggMixes()) {
      // Left-only operators hide R1, which *legitimately* collapses
      // kDistinctRight onto kSumBoth (the right-side distinct aggregate is
      // the only difference and it disappears with R1's visibility) — skip
      // the known alias instead of counting it as discrimination failure.
      if (LeftOnlyOutput(kind) && mix == AggMix::kDistinctRight) continue;
      TwoRelSpec spec;
      spec.kind = kind;
      spec.mix = mix;
      canonicals.insert(FingerprintQuery(MakeTwoRelQuery(spec)).canonical);
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(canonicals.size()), count);
}

}  // namespace
}  // namespace eadp
