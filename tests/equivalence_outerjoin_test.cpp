// Hand-constructed outerjoin equivalences at the execution level:
// the paper's Fig. 4 example for Eqv. 12 (full outerjoin, eager
// groupby-count with defaults) and Eqv. 14 (left outerjoin, grouping
// pushed into the right argument with defaults).

#include <gtest/gtest.h>

#include "exec/operators.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Table MakeE1() {
  Table t({"g1", "j1", "a1"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(2), I(4)});
  t.AddRow({I(1), I(2), I(8)});
  return t;
}

Table MakeE2() {
  Table t({"g2", "j2", "a2"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(1), I(4)});
  t.AddRow({I(1), I(2), I(8)});
  return t;
}

/// Rows that make both sides of the full outerjoin produce orphans.
Table MakeE1Extended() {
  Table t = MakeE1();
  t.AddRow({I(2), I(7), I(16)});  // j1 = 7 finds no partner
  return t;
}

Table MakeE2Extended() {
  Table t = MakeE2();
  t.AddRow({I(3), I(9), I(32)});  // j2 = 9 finds no partner
  return t;
}

ExecPredicate JoinPred() { return {{"j1", "j2", CmpOp::kEq}}; }

std::vector<ExecAggregate> LazyF() {
  return {ExecAggregate::Simple("c", AggKind::kCountStar),
          ExecAggregate::Simple("b1", AggKind::kSum, "a1"),
          ExecAggregate::Simple("b2", AggKind::kSum, "a2")};
}

/// Γ_{G+1; F11 ∘ c1:count(*)}(e1).
Table EagerInner(const Table& e1) {
  return GroupBy(e1, {"g1", "j1"},
                 {ExecAggregate::Simple("c1", AggKind::kCountStar),
                  ExecAggregate::Simple("b1p", AggKind::kSum, "a1")});
}

/// Γ_{G; (F2 ⊗ c1) ∘ F21}(·).
Table EagerOuter(const Table& joined,
                 const std::vector<std::string>& group_cols) {
  ExecAggregate b2;
  b2.output = "b2";
  b2.kind = AggKind::kSum;
  b2.arg = "a2";
  b2.multipliers = {"c1"};
  return GroupBy(joined, group_cols,
                 {ExecAggregate::Simple("c", AggKind::kSum, "c1"),
                  ExecAggregate::Simple("b1", AggKind::kSum, "b1p"), b2});
}

TEST(OuterJoinEquivalence, Eqv12Fig4FullOuterJoin) {
  // LHS: Γ_{g1,g2;F}(e1 K e2).
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2Extended();
  Table lhs = GroupBy(FullOuterJoin(e1, e2, JoinPred()), {"g1", "g2"},
                      LazyF());

  // RHS (Eqv. 12): the grouped left side joins via K with defaults
  // F11({⊥}) = (b1p: NULL), c1: 1 on the left-orphan padding.
  Table grouped = EagerInner(e1);
  DefaultVector left_defaults = {{"c1", I(1)}};  // b1p stays NULL
  Table joined =
      FullOuterJoin(grouped, e2, JoinPred(), left_defaults, DefaultVector{});
  Table rhs = EagerOuter(joined, {"g1", "g2"});

  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(OuterJoinEquivalence, Eqv12WithoutDefaultsIsWrong) {
  // Sanity check that the default vector is load-bearing: plain NULL
  // padding of c1 would lose the right-orphan rows' counts.
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2Extended();
  Table lhs = GroupBy(FullOuterJoin(e1, e2, JoinPred()), {"g1", "g2"},
                      LazyF());
  Table grouped = EagerInner(e1);
  // NOTE: deliberately no defaults. c1 is NULL on right-orphan rows, which
  // would make sum(c1) and sum(c1*a2) silently drop those rows.
  Table joined = FullOuterJoin(grouped, e2, JoinPred());
  // The multiplier machinery asserts on NULL counts in debug builds; here
  // we only check the row-count discrepancy via the lazy side.
  // The right orphan (g2=3) group must exist in the LHS.
  bool found = false;
  int g2_idx = lhs.RequireColumn("g2");
  for (const Row& r : lhs.rows()) {
    if (Value::GroupEquals(r[static_cast<size_t>(g2_idx)], I(3))) found = true;
  }
  EXPECT_TRUE(found);
  // Grouping collapses e1's 4 rows to 3 groups; 3 matches + 1 left orphan
  // + 1 right orphan = 5 rows (vs 6 in the ungrouped join).
  EXPECT_EQ(joined.NumRows(), 5u);
}

TEST(OuterJoinEquivalence, Eqv11LeftOuterLeftPushNoDefaultsNeeded) {
  // ΓG;F(e1 E e2) ≡ ΓG;(F2⊗c1)∘F21(Γ(e1) E e2): left rows always survive,
  // so no default vector is required.
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2();
  Table lhs =
      GroupBy(LeftOuterJoin(e1, e2, JoinPred()), {"g1", "g2"}, LazyF());
  Table rhs = EagerOuter(LeftOuterJoin(EagerInner(e1), e2, JoinPred()),
                         {"g1", "g2"});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(OuterJoinEquivalence, Eqv14LeftOuterRightPushWithDefaults) {
  // ΓG;F(e1 E e2) ≡ ΓG;(F1⊗c2)∘F22(e1 E^{F12({⊥}),c2:1} Γ(e2)).
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2Extended();
  Table lhs =
      GroupBy(LeftOuterJoin(e1, e2, JoinPred()), {"g1", "g2"}, LazyF());

  Table grouped_right =
      GroupBy(e2, {"g2", "j2"},
              {ExecAggregate::Simple("c2", AggKind::kCountStar),
               ExecAggregate::Simple("b2p", AggKind::kSum, "a2")});
  DefaultVector defaults = {{"c2", I(1)}};  // b2p: F12({⊥}) = NULL
  Table joined = LeftOuterJoin(e1, grouped_right, JoinPred(), defaults);
  ExecAggregate b1;
  b1.output = "b1";
  b1.kind = AggKind::kSum;
  b1.arg = "a1";
  b1.multipliers = {"c2"};
  Table rhs = GroupBy(joined, {"g1", "g2"},
                      {ExecAggregate::Simple("c", AggKind::kSum, "c2"),
                       ExecAggregate::Simple("b2", AggKind::kSum, "b2p"), b1});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(OuterJoinEquivalence, Eqv36FullOuterSplitBothSides) {
  // Eager/Lazy Split for K: both sides grouped, defaults on both sides.
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2Extended();
  Table lhs = GroupBy(FullOuterJoin(e1, e2, JoinPred()), {"g1", "g2"},
                      LazyF());

  Table g1t = EagerInner(e1);
  Table g2t = GroupBy(e2, {"g2", "j2"},
                      {ExecAggregate::Simple("c2", AggKind::kCountStar),
                       ExecAggregate::Simple("b2p", AggKind::kSum, "a2")});
  DefaultVector dl = {{"c1", I(1)}};
  DefaultVector dr = {{"c2", I(1)}};
  Table joined = FullOuterJoin(g1t, g2t, JoinPred(), dl, dr);

  ExecAggregate b1;  // (F21 ⊗ c2): sum(b1p * c2)
  b1.output = "b1";
  b1.kind = AggKind::kSum;
  b1.arg = "b1p";
  b1.multipliers = {"c2"};
  ExecAggregate b2;  // (F22 ⊗ c1): sum(b2p * c1)
  b2.output = "b2";
  b2.kind = AggKind::kSum;
  b2.arg = "b2p";
  b2.multipliers = {"c1"};
  ExecAggregate c;  // count(*): sum(c1 * c2)
  c.output = "c";
  c.kind = AggKind::kCountStar;
  c.multipliers = {"c1", "c2"};
  Table rhs = GroupBy(joined, {"g1", "g2"}, {c, b1, b2});
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(OuterJoinEquivalence, Eqv37SemijoinCommutesWithGrouping) {
  // ΓG;F(e1 N e2) ≡ ΓG;F(e1) N e2 when (F(q) ∩ A(e1)) ⊆ G.
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("b1", AggKind::kSum, "a1")};
  // G = {g1, j1} contains the join attribute j1.
  Table lhs = GroupBy(LeftSemiJoin(e1, e2, JoinPred()), {"g1", "j1"}, f);
  Table rhs = LeftSemiJoin(GroupBy(e1, {"g1", "j1"}, f), e2, JoinPred());
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

TEST(OuterJoinEquivalence, Eqv38AntijoinCommutesWithGrouping) {
  Table e1 = MakeE1Extended();
  Table e2 = MakeE2();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("b1", AggKind::kSum, "a1")};
  Table lhs = GroupBy(LeftAntiJoin(e1, e2, JoinPred()), {"g1", "j1"}, f);
  Table rhs = LeftAntiJoin(GroupBy(e1, {"g1", "j1"}, f), e2, JoinPred());
  EXPECT_TRUE(Table::BagEquals(lhs, rhs))
      << "lhs:\n"
      << lhs.ToString() << "rhs:\n"
      << rhs.ToString();
}

}  // namespace
}  // namespace eadp
