#include "queries/query_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "conflict/conflict_detector.h"
#include "queries/random_tree.h"

namespace eadp {
namespace {

TEST(RandomTree, CatalanNumbers) {
  EXPECT_EQ(CatalanNumber(0), 1u);
  EXPECT_EQ(CatalanNumber(1), 1u);
  EXPECT_EQ(CatalanNumber(2), 2u);
  EXPECT_EQ(CatalanNumber(3), 5u);
  EXPECT_EQ(CatalanNumber(4), 14u);
  EXPECT_EQ(CatalanNumber(10), 16796u);
  EXPECT_EQ(CatalanNumber(19), 1767263190u);
}

TEST(RandomTree, UnrankCoversAllShapesExactlyOnce) {
  // For n = 4 leaves there are C(3) = 5 shapes; all ranks give distinct
  // shapes with 4 leaves in left-to-right order.
  std::set<std::string> shapes;
  for (uint64_t r = 0; r < NumBinaryTrees(4); ++r) {
    auto t = UnrankBinaryTree(4, r);
    EXPECT_EQ(t->NumLeaves(), 4);
    // Serialize the shape.
    std::function<std::string(const TreeShape&)> ser =
        [&](const TreeShape& n) -> std::string {
      if (n.is_leaf) return std::to_string(n.leaf_index);
      return "(" + ser(*n.left) + "," + ser(*n.right) + ")";
    };
    shapes.insert(ser(*t));
  }
  EXPECT_EQ(shapes.size(), 5u);
}

TEST(RandomTree, LeafIndicesLeftToRight) {
  auto t = UnrankBinaryTree(5, 3);
  std::vector<int> leaves;
  std::function<void(const TreeShape&)> collect = [&](const TreeShape& n) {
    if (n.is_leaf) {
      leaves.push_back(n.leaf_index);
      return;
    }
    collect(*n.left);
    collect(*n.right);
  };
  collect(*t);
  EXPECT_EQ(leaves, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(QueryGenerator, DeterministicInSeed) {
  GeneratorOptions gen;
  gen.num_relations = 6;
  Query a = GenerateRandomQuery(gen, 5);
  Query b = GenerateRandomQuery(gen, 5);
  EXPECT_EQ(a.ToString(), b.ToString());
  Query c = GenerateRandomQuery(gen, 6);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(QueryGenerator, StructuralInvariants) {
  GeneratorOptions gen;
  for (int n = 2; n <= 10; ++n) {
    gen.num_relations = n;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Query q = GenerateRandomQuery(gen, seed);
      EXPECT_EQ(q.NumRelations(), n);
      EXPECT_EQ(q.ops().size(), static_cast<size_t>(n - 1));
      EXPECT_FALSE(q.group_by().empty());
      EXPECT_FALSE(q.aggregates().empty());
      // Grouping attributes and aggregate args only from visible rels.
      RelSet visible = q.VisibleRelations();
      EXPECT_TRUE(
          q.catalog().RelationsOf(q.group_by()).IsSubsetOf(visible));
      for (const AggregateFunction& f : q.aggregates()) {
        if (f.arg >= 0) {
          EXPECT_TRUE(visible.Contains(q.catalog().RelationOf(f.arg)));
        }
      }
      // Every operator's predicate spans its two sides.
      for (const QueryOp& op : q.ops()) {
        AttrSet refs = op.predicate.ReferencedAttrs();
        EXPECT_TRUE(
            q.catalog().RelationsOf(refs).Intersects(op.left_rels));
        EXPECT_TRUE(
            q.catalog().RelationsOf(refs).Intersects(op.right_rels));
      }
    }
  }
}

TEST(QueryGenerator, InnerOnlyFlag) {
  GeneratorOptions gen;
  gen.num_relations = 8;
  gen.inner_joins_only = true;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Query q = GenerateRandomQuery(gen, seed);
    for (const QueryOp& op : q.ops()) {
      EXPECT_EQ(op.kind, OpKind::kJoin);
    }
  }
}

TEST(QueryGenerator, AvgGetsCanonicalized) {
  GeneratorOptions gen;
  gen.num_relations = 4;
  gen.avg_agg_probability = 1.0;
  gen.distinct_agg_probability = 0.0;
  bool saw_division = false;
  for (uint64_t seed = 0; seed < 20 && !saw_division; ++seed) {
    Query q = GenerateRandomQuery(gen, seed);
    for (const AggregateFunction& f : q.aggregates()) {
      EXPECT_NE(f.kind, AggKind::kAvg);  // canonicalized away
    }
    saw_division |= !q.final_divisions().empty();
  }
  EXPECT_TRUE(saw_division);
}

// ---------------------------------------------------------------------------
// Structured large-query topologies (chain/star/cycle/clique/snowflake).
// ---------------------------------------------------------------------------

std::vector<QueryTopology> StructuredTopologies() {
  return {QueryTopology::kChain, QueryTopology::kStar, QueryTopology::kCycle,
          QueryTopology::kClique, QueryTopology::kSnowflake};
}

/// Unordered relation pairs linked by at least one predicate equality.
std::set<std::pair<int, int>> EqualityPairs(const Query& q) {
  std::set<std::pair<int, int>> pairs;
  for (const QueryOp& op : q.ops()) {
    for (const AttrEquality& eq : op.predicate.equalities()) {
      int a = q.catalog().RelationOf(eq.left_attr);
      int b = q.catalog().RelationOf(eq.right_attr);
      pairs.emplace(std::min(a, b), std::max(a, b));
    }
  }
  return pairs;
}

size_t EqualityCount(const Query& q) {
  size_t count = 0;
  for (const QueryOp& op : q.ops()) count += op.predicate.equalities().size();
  return count;
}

TEST(TopologyGenerator, DeterministicInSeedAcrossTopologies) {
  for (QueryTopology t : StructuredTopologies()) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 30;
    Query a = GenerateRandomQuery(gen, 42);
    Query b = GenerateRandomQuery(gen, 42);
    EXPECT_EQ(a.ToString(), b.ToString()) << TopologyName(t);
    Query c = GenerateRandomQuery(gen, 43);
    EXPECT_NE(a.ToString(), c.ToString()) << TopologyName(t);
  }
}

TEST(TopologyGenerator, EdgeStructureMatchesTopology) {
  for (int n : {2, 3, 5, 10, 40}) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      for (QueryTopology t : StructuredTopologies()) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        Query q = GenerateRandomQuery(gen, seed);
        EXPECT_EQ(q.NumRelations(), n);
        EXPECT_EQ(q.ops().size(), static_cast<size_t>(n - 1));
        for (const QueryOp& op : q.ops()) {
          EXPECT_EQ(op.kind, OpKind::kJoin);
        }

        std::set<std::pair<int, int>> pairs = EqualityPairs(q);
        std::set<std::pair<int, int>> want;
        switch (t) {
          case QueryTopology::kChain:
            for (int i = 1; i < n; ++i) want.emplace(i - 1, i);
            break;
          case QueryTopology::kStar:
            for (int i = 1; i < n; ++i) want.emplace(0, i);
            break;
          case QueryTopology::kCycle:
            for (int i = 1; i < n; ++i) want.emplace(i - 1, i);
            if (n > 2) want.emplace(0, n - 1);
            break;
          case QueryTopology::kClique:
            for (int i = 0; i < n; ++i) {
              for (int j = i + 1; j < n; ++j) want.emplace(i, j);
            }
            break;
          case QueryTopology::kSnowflake:
            // 3-ary hierarchy: relation i links to its parent (i-1)/3.
            for (int i = 1; i < n; ++i) want.emplace((i - 1) / 3, i);
            break;
          case QueryTopology::kRandomTree:
            break;
        }
        EXPECT_EQ(pairs, want)
            << TopologyName(t) << " n=" << n << " seed=" << seed;
        // One equality per linked pair (the clique distributes its
        // n(n-1)/2 equalities over the n-1 operators).
        EXPECT_EQ(EqualityCount(q), want.size());
      }
    }
  }
}

TEST(TopologyGenerator, HypergraphIsConnectedUpTo100Relations) {
  for (int n : {2, 10, 50, 100}) {
    for (QueryTopology t : StructuredTopologies()) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = n;
      Query q = GenerateRandomQuery(gen, 7);
      EXPECT_EQ(q.NumRelations(), n) << TopologyName(t);
      // One attribute per relation keeps 100-way joins inside the
      // 128-attribute universe.
      EXPECT_EQ(q.catalog().num_attributes(), n);
      EXPECT_FALSE(q.group_by().empty());
      EXPECT_FALSE(q.aggregates().empty());
      ConflictDetector conflicts(q);
      EXPECT_TRUE(conflicts.hypergraph().IsConnected(q.AllRelations()))
          << TopologyName(t) << " n=" << n;
    }
  }
}

TEST(TopologyGenerator, CardinalityProductsStayFinite) {
  // 100-way independence products must not overflow a double — the
  // structured path keeps |R| * selectivity within a decade per join step.
  for (QueryTopology t : StructuredTopologies()) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 100;
    Query q = GenerateRandomQuery(gen, 11);
    double product = 1;
    for (int r = 0; r < q.NumRelations(); ++r) {
      product *= q.catalog().relation(r).cardinality;
    }
    for (const QueryOp& op : q.ops()) product *= op.selectivity;
    EXPECT_TRUE(std::isfinite(product)) << TopologyName(t);
  }
}

TEST(TopologyGenerator, PerEdgeCliqueEmitsOneOperatorPerEdge) {
  for (int n : {3, 5, 10, 16}) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      GeneratorOptions gen;
      gen.topology = QueryTopology::kClique;
      gen.num_relations = n;
      gen.per_edge_predicates = true;
      Query q = GenerateRandomQuery(gen, seed);
      // Dense hypergraph: every pairwise equality is its own inner-join
      // operator (n(n-1)/2 of them), not conjoined into the n-1 tree ops.
      EXPECT_EQ(q.ops().size(), static_cast<size_t>(n * (n - 1) / 2));
      for (const QueryOp& op : q.ops()) {
        EXPECT_EQ(op.kind, OpKind::kJoin);
        EXPECT_EQ(op.predicate.equalities().size(), 1u);
      }
      std::set<std::pair<int, int>> want;
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) want.emplace(i, j);
      }
      EXPECT_EQ(EqualityPairs(q), want) << "n=" << n << " seed=" << seed;
      ConflictDetector conflicts(q);
      EXPECT_TRUE(conflicts.hypergraph().IsConnected(q.AllRelations()));
    }
  }
}

TEST(TopologyGenerator, PerEdgeCycleSplitsTheClosingEdge) {
  GeneratorOptions gen;
  gen.topology = QueryTopology::kCycle;
  gen.num_relations = 8;
  gen.per_edge_predicates = true;
  Query q = GenerateRandomQuery(gen, 3);
  // n chain+closing edges, each its own single-equality operator.
  EXPECT_EQ(q.ops().size(), 8u);
  for (const QueryOp& op : q.ops()) {
    EXPECT_EQ(op.predicate.equalities().size(), 1u);
  }
  std::set<std::pair<int, int>> want;
  for (int i = 1; i < 8; ++i) want.emplace(i - 1, i);
  want.emplace(0, 7);
  EXPECT_EQ(EqualityPairs(q), want);
}

TEST(TopologyGenerator, PerEdgeModePreservesTheRngDrawSequence) {
  // Per-edge mode restructures operators but must not shift any random
  // draw: catalogs and the edge-selectivity multiset stay identical.
  for (QueryTopology t : {QueryTopology::kClique, QueryTopology::kCycle}) {
    GeneratorOptions conjoined;
    conjoined.topology = t;
    conjoined.num_relations = 12;
    GeneratorOptions split = conjoined;
    split.per_edge_predicates = true;
    Query a = GenerateRandomQuery(conjoined, 17);
    Query b = GenerateRandomQuery(split, 17);
    ASSERT_EQ(a.catalog().num_relations(), b.catalog().num_relations());
    for (int r = 0; r < a.catalog().num_relations(); ++r) {
      EXPECT_EQ(a.catalog().relation(r).cardinality,
                b.catalog().relation(r).cardinality)
          << TopologyName(t) << " R" << r;
    }
    for (int at = 0; at < a.catalog().num_attributes(); ++at) {
      EXPECT_EQ(a.catalog().attribute(at).distinct,
                b.catalog().attribute(at).distinct)
          << TopologyName(t) << " attr " << at;
    }
    double prod_a = 1, prod_b = 1;
    for (const QueryOp& op : a.ops()) prod_a *= op.selectivity;
    for (const QueryOp& op : b.ops()) prod_b *= op.selectivity;
    EXPECT_DOUBLE_EQ(prod_a, prod_b) << TopologyName(t);
    EXPECT_EQ(a.group_by(), b.group_by()) << TopologyName(t);
  }
}

TEST(QueryGenerator, GroupJoinsCarryAggregates) {
  GeneratorOptions gen;
  gen.num_relations = 6;
  gen.w_groupjoin = 10;  // force many groupjoins
  bool saw = false;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Query q = GenerateRandomQuery(gen, seed);
    for (const QueryOp& op : q.ops()) {
      if (op.kind == OpKind::kGroupJoin) {
        saw = true;
        EXPECT_FALSE(op.groupjoin_aggs.empty());
      }
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace eadp
