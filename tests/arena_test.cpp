// The bump arena underneath the plan memory model: growth, alignment,
// destructor bookkeeping, Reset() recycling, and the PlanArena KeySet
// interner (pointer-equality contract used by the dominance fast path).

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "plangen/plan.h"

namespace eadp {
namespace {

TEST(Arena, AllocationsAreAligned) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                       size_t{16}}) {
    for (size_t size : {size_t{1}, size_t{3}, size_t{8}, size_t{100}}) {
      void* p = arena.AllocateBytes(size, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "size=" << size << " align=" << align;
    }
  }
}

TEST(Arena, GrowsAcrossBlocksWithoutMovingObjects) {
  Arena arena;
  // Far more than one 16 KiB initial block; every earlier value must stay
  // intact as new blocks are chained on.
  std::vector<uint64_t*> ptrs;
  for (uint64_t i = 0; i < 100000; ++i) {
    ptrs.push_back(arena.New<uint64_t>(i));
  }
  EXPECT_GT(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_used(), 100000 * sizeof(uint64_t));
  for (uint64_t i = 0; i < ptrs.size(); i += 997) {
    EXPECT_EQ(*ptrs[i], i);
  }
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  Arena arena;
  // Larger than the maximum block size: must still succeed and be usable.
  constexpr size_t kHuge = 3u << 20;
  char* p = static_cast<char*>(arena.AllocateBytes(kHuge, 8));
  p[0] = 'a';
  p[kHuge - 1] = 'z';
  EXPECT_EQ(p[0], 'a');
  EXPECT_EQ(p[kHuge - 1], 'z');
  // The arena keeps allocating fine afterwards.
  int* q = arena.New<int>(7);
  EXPECT_EQ(*q, 7);
}

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter_(counter) {}
  ~DtorCounter() { ++*counter_; }
  int* counter_;
  std::string payload = "non-trivial";  // forces a real destructor
};

TEST(Arena, RunsDestructorsOnReset) {
  int destroyed = 0;
  Arena arena;
  for (int i = 0; i < 10; ++i) arena.New<DtorCounter>(&destroyed);
  arena.New<int>(1);  // trivially destructible: no cleanup entry
  EXPECT_EQ(destroyed, 0);
  arena.Reset();
  EXPECT_EQ(destroyed, 10);
  // Reset does not double-run cleanups.
  arena.Reset();
  EXPECT_EQ(destroyed, 10);
}

TEST(Arena, RunsDestructorsOnDestruction) {
  int destroyed = 0;
  {
    Arena arena;
    for (int i = 0; i < 5; ++i) arena.New<DtorCounter>(&destroyed);
  }
  EXPECT_EQ(destroyed, 5);
}

TEST(Arena, ResetRecyclesSteadyStateBlock) {
  Arena arena;
  for (int i = 0; i < 100000; ++i) arena.New<uint64_t>(i);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.num_blocks(), 1u);
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // Refilling within the recycled block must not grow the reservation.
  size_t fits = reserved / sizeof(uint64_t);
  for (size_t i = 0; i < fits; ++i) arena.New<uint64_t>(i);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(PlanArena, InternKeysDeduplicates) {
  PlanArena arena;
  AttrSet a = AttrSet::Single(1);
  AttrSet b = AttrSet::Single(2);
  const KeySet* k1 = arena.InternKeys(KeySet{a, b});
  const KeySet* k2 = arena.InternKeys(KeySet{a, b});
  const KeySet* k3 = arena.InternKeys(KeySet{a});
  const KeySet* empty1 = arena.InternKeys(KeySet{});
  const KeySet* empty2 = arena.InternKeys(KeySet{});
  EXPECT_EQ(k1, k2);  // equal contents -> same pointer (dominance fast path)
  EXPECT_NE(k1, k3);
  EXPECT_EQ(empty1, empty2);
  EXPECT_EQ(k1->size(), 2u);
  EXPECT_EQ(k3->size(), 1u);
  EXPECT_TRUE(empty1->empty());
}

TEST(KeySet, InsertKeepsMinimality) {
  KeySet keys;
  AttrSet k01;
  k01.Add(0);
  k01.Add(1);
  keys.Insert(k01);
  EXPECT_EQ(keys.size(), 1u);
  // A subset replaces its supersets.
  keys.Insert(AttrSet::Single(0));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttrSet::Single(0));
  // A superset of a present key is dropped.
  keys.Insert(k01);
  EXPECT_EQ(keys.size(), 1u);
}

TEST(KeySet, InsertCapsAtMaxKeys) {
  KeySet keys;
  for (int i = 0; i < 2 * static_cast<int>(kMaxKeysPerPlan); ++i) {
    keys.Insert(AttrSet::Single(i));  // pairwise incomparable singletons
  }
  EXPECT_EQ(keys.size(), kMaxKeysPerPlan);
  EXPECT_TRUE(keys.full());
}

TEST(PlanArena, OptimizeResultKeepsPlanAliveAfterBuilderDies) {
  // The ownership contract of the refactor: OptimizeResult::arena is the
  // sole owner of the plan nodes; everything inside Optimize() may die.
  // (Exercised end-to-end implicitly everywhere; pinned explicitly here.)
  PlanNode* node = nullptr;
  std::shared_ptr<PlanArena> arena;
  {
    PlanArena local;  // builder-internal arenas die with the builder...
    (void)local;
    arena = std::make_shared<PlanArena>();
    node = arena->NewNode();
    node->op = PlanOp::kScan;
    node->relation = 3;
  }
  EXPECT_EQ(node->relation, 3);
  EXPECT_EQ(arena->nodes_allocated(), 1u);
}

}  // namespace
}  // namespace eadp
