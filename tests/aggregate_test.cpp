#include "algebra/aggregate.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

AggregateFunction Make(AggKind kind, bool distinct = false) {
  AggregateFunction f;
  f.output = "x";
  f.kind = kind;
  f.arg = kind == AggKind::kCountStar ? -1 : 0;
  f.distinct = distinct;
  return f;
}

TEST(Aggregate, DuplicateSensitivityMatchesPaper) {
  // Sec. 2.1.3: min, max, *(distinct) are duplicate agnostic; sum, count,
  // avg are duplicate sensitive.
  EXPECT_TRUE(IsDuplicateAgnostic(Make(AggKind::kMin)));
  EXPECT_TRUE(IsDuplicateAgnostic(Make(AggKind::kMax)));
  EXPECT_TRUE(IsDuplicateAgnostic(Make(AggKind::kSum, true)));
  EXPECT_TRUE(IsDuplicateAgnostic(Make(AggKind::kCount, true)));
  EXPECT_TRUE(IsDuplicateAgnostic(Make(AggKind::kAvg, true)));
  EXPECT_FALSE(IsDuplicateAgnostic(Make(AggKind::kSum)));
  EXPECT_FALSE(IsDuplicateAgnostic(Make(AggKind::kCount)));
  EXPECT_FALSE(IsDuplicateAgnostic(Make(AggKind::kCountStar)));
  EXPECT_FALSE(IsDuplicateAgnostic(Make(AggKind::kAvg)));
}

TEST(Aggregate, DecomposabilityMatchesPaper) {
  // Sec. 2.1.2: min/max/sum/count decomposable; sum(distinct),
  // count(distinct) are not; avg only via canonicalization.
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kMin)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kMax)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kSum)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kCount)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kCountStar)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kCountNN)));
  EXPECT_FALSE(IsDecomposable(Make(AggKind::kSum, true)));
  EXPECT_FALSE(IsDecomposable(Make(AggKind::kCount, true)));
  EXPECT_FALSE(IsDecomposable(Make(AggKind::kAvg)));
  // min/max(distinct) equal their plain forms and stay decomposable.
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kMin, true)));
  EXPECT_TRUE(IsDecomposable(Make(AggKind::kMax, true)));
}

TEST(Aggregate, DecompositionPairs) {
  // min = min ∘ min, max = max ∘ max, sum = sum ∘ sum,
  // count = sum ∘ count, count(*) = sum ∘ count(*).
  EXPECT_EQ(InnerDecomposition(AggKind::kMin), AggKind::kMin);
  EXPECT_EQ(OuterDecomposition(AggKind::kMin), AggKind::kMin);
  EXPECT_EQ(InnerDecomposition(AggKind::kMax), AggKind::kMax);
  EXPECT_EQ(OuterDecomposition(AggKind::kMax), AggKind::kMax);
  EXPECT_EQ(InnerDecomposition(AggKind::kSum), AggKind::kSum);
  EXPECT_EQ(OuterDecomposition(AggKind::kSum), AggKind::kSum);
  EXPECT_EQ(InnerDecomposition(AggKind::kCount), AggKind::kCount);
  EXPECT_EQ(OuterDecomposition(AggKind::kCount), AggKind::kSum);
  EXPECT_EQ(InnerDecomposition(AggKind::kCountStar), AggKind::kCountStar);
  EXPECT_EQ(OuterDecomposition(AggKind::kCountStar), AggKind::kSum);
}

TEST(Aggregate, NullTupleDefaults) {
  // A.5.1 convention: count(*)({⊥}) = 1; count(a)({⊥}) = 0;
  // sum/min/max({⊥}) = NULL.
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kCountStar), NullTupleDefault::kOne);
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kCount), NullTupleDefault::kZero);
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kCountNN), NullTupleDefault::kZero);
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kSum), NullTupleDefault::kNull);
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kMin), NullTupleDefault::kNull);
  EXPECT_EQ(DefaultOnNullTuple(AggKind::kMax), NullTupleDefault::kNull);
}

TEST(Aggregate, ToString) {
  EXPECT_EQ(Make(AggKind::kCountStar).ToString(""), "x:count(*)");
  EXPECT_EQ(Make(AggKind::kSum).ToString("R.a"), "x:sum(R.a)");
  EXPECT_EQ(Make(AggKind::kCount, true).ToString("R.a"),
            "x:count(distinct R.a)");
}

}  // namespace
}  // namespace eadp
