// H1/H2 behaviour (Sec. 4.4/4.5): eagerness, tolerance factor effects.

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

TEST(Eagerness, CountsGroupingChildren) {
  PlanNode scan;
  scan.op = PlanOp::kScan;
  PlanNode group;
  group.op = PlanOp::kGroup;
  group.left = &scan;

  PlanNode join;
  join.op = PlanOp::kJoin;
  join.left = &scan;
  join.right = &scan;
  EXPECT_EQ(join.Eagerness(), 0);
  join.left = &group;
  EXPECT_EQ(join.Eagerness(), 1);
  join.right = &group;
  EXPECT_EQ(join.Eagerness(), 2);
}

TEST(Heuristics, H2PrefersEagerPlansWithinTolerance) {
  // On workloads where eager aggregation pays off only globally, a larger
  // tolerance lets H2 keep eager subplans that H1 discards. Statistically:
  // across seeds, H2(F=1.05) must produce total cost <= H1 on average, and
  // strictly better somewhere.
  GeneratorOptions gen;
  gen.num_relations = 6;
  double h1_total = 0;
  double h2_total = 0;
  int h2_wins = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 42);
    OptimizerOptions h1;
    h1.algorithm = Algorithm::kH1;
    OptimizerOptions h2;
    h2.algorithm = Algorithm::kH2;
    h2.h2_tolerance = 1.05;
    double c1 = Optimize(q, h1).plan->cost;
    double c2 = Optimize(q, h2).plan->cost;
    h1_total += c1;
    h2_total += c2;
    if (c2 < c1 * (1 - 1e-12)) ++h2_wins;
  }
  EXPECT_GT(h2_wins, 0) << "H2 never beat H1 on 30 random queries";
}

TEST(Heuristics, HeuristicsTrackOptimumWithinSmallFactor) {
  // Fig. 17: heuristics stay close to the optimum on average, with rare
  // extreme outliers (the paper saw factors up to 10.3 for H1). Assert
  // that (a) most queries are optimized to within 5% of the optimum and
  // (b) the ratio never drops below 1.
  GeneratorOptions gen;
  gen.num_relations = 5;
  const int kQueries = 20;
  int h1_close = 0;
  int h2_close = 0;
  for (uint64_t seed = 0; seed < kQueries; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 7);
    OptimizerOptions opt;
    opt.algorithm = Algorithm::kEaPrune;
    double best = Optimize(q, opt).plan->cost;
    opt.algorithm = Algorithm::kH1;
    double r1 = Optimize(q, opt).plan->cost / best;
    opt.algorithm = Algorithm::kH2;
    opt.h2_tolerance = 1.03;
    double r2 = Optimize(q, opt).plan->cost / best;
    EXPECT_GE(r1, 1.0 - 1e-9);
    EXPECT_GE(r2, 1.0 - 1e-9);
    if (r1 < 1.05) ++h1_close;
    if (r2 < 1.05) ++h2_close;
  }
  EXPECT_GE(h1_close, kQueries * 6 / 10);
  EXPECT_GE(h2_close, kQueries * 6 / 10);
}

TEST(Heuristics, HugeToleranceDegradesQuality) {
  // A tolerance far above 1 makes H2 take eager plans indiscriminately,
  // which must never beat the optimum and typically trails F=1.03.
  GeneratorOptions gen;
  gen.num_relations = 6;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Query q = GenerateRandomQuery(gen, seed + 77);
    OptimizerOptions opt;
    opt.algorithm = Algorithm::kEaPrune;
    double best = Optimize(q, opt).plan->cost;
    opt.algorithm = Algorithm::kH2;
    opt.h2_tolerance = 100.0;
    EXPECT_GE(Optimize(q, opt).plan->cost, best - 1e-9 * (1 + best));
  }
}

TEST(Heuristics, H1KeepsSinglePlanPerClass) {
  GeneratorOptions gen;
  gen.num_relations = 6;
  Query q = GenerateRandomQuery(gen, 5);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kH1;
  OptimizeResult r = Optimize(q, opt);
  // Single plan per class: table_plans == table_classes.
  EXPECT_EQ(r.stats.table_plans, r.stats.table_classes);
}

}  // namespace
}  // namespace eadp
