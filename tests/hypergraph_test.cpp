#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

RelSet Set(std::initializer_list<int> xs) {
  RelSet s;
  for (int x : xs) s.Add(x);
  return s;
}

Hypergraph Chain(int n) {
  Hypergraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(RelSet::Single(i), RelSet::Single(i + 1), i);
  }
  return g;
}

TEST(Hypergraph, ConnectsSimpleEdges) {
  Hypergraph g = Chain(4);
  EXPECT_TRUE(g.Connects(Set({0}), Set({1})));
  EXPECT_TRUE(g.Connects(Set({1}), Set({0})));
  EXPECT_FALSE(g.Connects(Set({0}), Set({2})));
  EXPECT_TRUE(g.Connects(Set({0, 1}), Set({2, 3})));
}

TEST(Hypergraph, IsConnected) {
  Hypergraph g = Chain(5);
  EXPECT_TRUE(g.IsConnected(Set({0})));
  EXPECT_TRUE(g.IsConnected(Set({0, 1, 2})));
  EXPECT_FALSE(g.IsConnected(Set({0, 2})));
  EXPECT_FALSE(g.IsConnected(Set({})));
  EXPECT_TRUE(g.IsConnected(Set({0, 1, 2, 3, 4})));
}

TEST(Hypergraph, NeighborhoodSimple) {
  Hypergraph g = Chain(5);
  EXPECT_EQ(g.Neighborhood(Set({2}), Set({})), Set({1, 3}));
  EXPECT_EQ(g.Neighborhood(Set({2}), Set({1})), Set({3}));
  EXPECT_EQ(g.Neighborhood(Set({0, 1}), Set({})), Set({2}));
}

TEST(Hypergraph, HyperedgeRequiresFullSideContained) {
  // Edge {0,1} -- {2}: neighborhood of {0} alone must not see 2.
  Hypergraph g(3);
  g.AddEdge(Set({0, 1}), Set({2}), 0);
  g.AddEdge(Set({0}), Set({1}), 1);
  EXPECT_EQ(g.Neighborhood(Set({0}), Set({})), Set({1}));
  EXPECT_EQ(g.Neighborhood(Set({0, 1}), Set({})), Set({2}));
  EXPECT_FALSE(g.Connects(Set({0}), Set({2})));
  EXPECT_TRUE(g.Connects(Set({0, 1}), Set({2})));
}

TEST(Hypergraph, HyperedgeNeighborhoodUsesRepresentative) {
  // Edge {0} -- {1,2}: from {0}, only the representative min{1,2}=1 shows.
  Hypergraph g(3);
  g.AddEdge(Set({0}), Set({1, 2}), 0);
  EXPECT_EQ(g.Neighborhood(Set({0}), Set({})), Set({1}));
  // If part of the hypernode is forbidden, the edge gives no neighbor.
  EXPECT_EQ(g.Neighborhood(Set({0}), Set({2})), Set({}));
}

TEST(Hypergraph, ConnectivityThroughHyperedge) {
  Hypergraph g(3);
  g.AddEdge(Set({0}), Set({1, 2}), 0);
  g.AddEdge(Set({1}), Set({2}), 1);
  EXPECT_TRUE(g.IsConnected(Set({0, 1, 2})));
  EXPECT_FALSE(g.IsConnected(Set({0, 1})));  // hyperedge needs {1,2} whole
}

}  // namespace
}  // namespace eadp
