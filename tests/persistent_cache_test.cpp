// Crash-recovery and coherence pins for the disk-backed plan-cache tier
// (plangen/persistent_cache.h):
//
//   * round trips — Put/Get bit-identical plans, reopen from a cold
//     process state rebuilds the index from the segment logs;
//   * fault injection — a torn tail is truncated on reopen and drops
//     ONLY the torn record, mid-history corruption serves the clean
//     prefix and retires the segment from appends, a version-skewed
//     segment is skipped wholesale and left byte-identical on disk;
//   * two processes — a forked writer populates the directory, the
//     parent opens cold and serves the writer's plans (the cross-process
//     contract bench_persistent_cache's restart phase relies on);
//   * tier coherence — OptimizeThroughCache reports cache_tier 0 (fresh)
//     / 1 (memory) / 2 (disk), disk hits are promoted into memory, and
//     a fresh plan lands in both tiers;
//   * concurrency — parallel Get/Put against the write-behind path.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/binio.h"
#include "plangen/persistent_cache.h"
#include "plangen/plan_cache.h"
#include "plangen/plan_explain.h"
#include "plangen/plangen.h"
#include "queries/fingerprint.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

// ---------------------------------------------------------------------------
// Filesystem helpers.
// ---------------------------------------------------------------------------

/// Scoped temp directory, removed (recursively, one level) on scope exit.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/eadp_pcache_XXXXXX";
    const char* made = mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "";
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* dir = opendir(path_.c_str())) {
      while (dirent* e = readdir(dir)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        unlink((path_ + "/" + name).c_str());
      }
      closedir(dir);
    }
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  EXPECT_NE(d, nullptr);
  if (d == nullptr) return names;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("segment-", 0) == 0) names.push_back(dir + "/" + name);
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

off_t FileSize(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

std::string ReadFile(const std::string& path) {
  std::string out;
  int fd = open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0) << path;
  if (fd < 0) return out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  close(fd);
  return out;
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  int fd = open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0) << path;
  ASSERT_EQ(write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  close(fd);
}

void FlipByteAt(const std::string& path, off_t offset) {
  int fd = open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path;
  char c;
  ASSERT_EQ(pread(fd, &c, 1, offset), 1);
  c = static_cast<char>(c ^ 0xff);
  ASSERT_EQ(pwrite(fd, &c, 1, offset), 1);
  close(fd);
}

// ---------------------------------------------------------------------------
// Workload helpers.
// ---------------------------------------------------------------------------

/// Distinct small queries: varying topology/arity/seed => distinct
/// canonical fingerprints.
Query NthQuery(int i) {
  GeneratorOptions gen;
  gen.topology = (i % 2 == 0) ? QueryTopology::kChain : QueryTopology::kStar;
  gen.num_relations = 3 + (i % 3);
  return GenerateRandomQuery(gen, /*seed=*/static_cast<uint64_t>(i));
}

struct PlannedQuery {
  Query query;
  QueryFingerprint fp;
  OptimizeResult result;
};

PlannedQuery PlanNth(int i) {
  OptimizerOptions options;
  PlannedQuery p{NthQuery(i), {}, {}};
  p.fp = PlanCacheKey(p.query, options);
  p.result = OptimizeAdaptive(p.query, options);
  EXPECT_NE(p.result.plan, nullptr);
  return p;
}

std::unique_ptr<PersistentPlanCache> OpenOrDie(PersistentCacheOptions opts) {
  std::string error;
  auto cache = PersistentPlanCache::Open(opts, &error);
  EXPECT_NE(cache, nullptr) << error;
  return cache;
}

/// Served plan must be bit-identical to the one that was stored.
void ExpectServes(PersistentPlanCache* cache, const PlannedQuery& p) {
  OptimizeResult out;
  ASSERT_TRUE(cache->Get(p.fp, &out)) << p.fp.canonical;
  ASSERT_NE(out.plan, nullptr);
  EXPECT_EQ(std::bit_cast<uint64_t>(out.plan->cost),
            std::bit_cast<uint64_t>(p.result.plan->cost));
  EXPECT_EQ(PlanToJson(out.plan, p.query.catalog()),
            PlanToJson(p.result.plan, p.query.catalog()));
}

// ---------------------------------------------------------------------------
// Round trips and reopen.
// ---------------------------------------------------------------------------

TEST(PersistentCache, RoundTripAndReopen) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 6; ++i) planned.push_back(PlanNth(i));

  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
    PersistentCacheStats s = cache->Snapshot();
    EXPECT_EQ(s.puts, 6u);
    EXPECT_EQ(s.records, 6u);
    EXPECT_EQ(s.appended_records, 6u);
    for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
    EXPECT_EQ(cache->Snapshot().hits, 6u);
  }

  // A cold process (no in-memory state survives) rebuilds from the log.
  auto reopened = OpenOrDie(opts);
  EXPECT_EQ(reopened->Snapshot().records, 6u);
  EXPECT_EQ(reopened->Snapshot().torn_records_dropped, 0u);
  for (const PlannedQuery& p : planned) ExpectServes(reopened.get(), p);

  // Unknown keys miss.
  QueryFingerprint stranger;
  stranger.canonical = "no such query";
  RehashFingerprint(&stranger);
  OptimizeResult out;
  EXPECT_FALSE(reopened->Get(stranger, &out));
  EXPECT_EQ(reopened->Snapshot().misses, 1u);
}

TEST(PersistentCache, WriteBehindFlushIsDurable) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = true;

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 4; ++i) planned.push_back(PlanNth(i));
  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
    cache->Flush();  // barrier: everything accepted so far is on disk
    EXPECT_EQ(cache->Snapshot().appended_records, 4u);
    for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
  }
  auto reopened = OpenOrDie(opts);
  EXPECT_EQ(reopened->Snapshot().records, 4u);
  for (const PlannedQuery& p : planned) ExpectServes(reopened.get(), p);
}

TEST(PersistentCache, DuplicatePutsSuppressed) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;

  PlannedQuery p = PlanNth(0);
  auto cache = OpenOrDie(opts);
  cache->Put(p.fp, p.result);
  cache->Put(p.fp, p.result);
  PersistentCacheStats s = cache->Snapshot();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.duplicate_puts, 1u);
  EXPECT_EQ(s.records, 1u);
}

TEST(PersistentCache, NullPlanRoundTrips) {
  // An unsatisfiable verdict is a legal cached value.
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;

  QueryFingerprint fp;
  fp.canonical = "unsatisfiable query";
  RehashFingerprint(&fp);
  OptimizeResult unsat;
  unsat.stats.algorithm = Algorithm::kDphyp;
  unsat.stats.optimize_ms = 0.5;

  auto cache = OpenOrDie(opts);
  cache->Put(fp, unsat);
  OptimizeResult out;
  ASSERT_TRUE(cache->Get(fp, &out));
  EXPECT_EQ(out.plan, nullptr);
  EXPECT_EQ(OptimizeStatsToJson(out.stats),
            OptimizeStatsToJson(unsat.stats));
}

TEST(PersistentCache, SegmentRollover) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;
  opts.max_segment_bytes = 1;  // every record rolls into its own segment

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 5; ++i) planned.push_back(PlanNth(i));
  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
    EXPECT_GE(cache->Snapshot().segments, 5u);
  }
  EXPECT_GE(ListSegments(dir.path()).size(), 5u);
  auto reopened = OpenOrDie(opts);
  EXPECT_EQ(reopened->Snapshot().records, 5u);
  for (const PlannedQuery& p : planned) ExpectServes(reopened.get(), p);
}

TEST(PersistentCache, WarmGetsServeViaMmap) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;
  opts.max_segment_bytes = 1;  // every record rolls into its own segment

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 5; ++i) planned.push_back(PlanNth(i));
  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
    // Rollover seals (and maps) every segment but the active one, so the
    // first warm pass already serves the sealed records from the mapping.
    for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
    PersistentCacheStats s = cache->Snapshot();
    EXPECT_EQ(s.mmap_serves + s.pread_serves, s.hits);
    EXPECT_GE(s.mmap_serves, 4u);  // all but the still-active tail segment
  }

  // Reopen: every full segment is sealed history, mapped by Open — a warm
  // restarted process serves *exclusively* via the mmap read path.
  auto reopened = OpenOrDie(opts);
  for (const PlannedQuery& p : planned) ExpectServes(reopened.get(), p);
  PersistentCacheStats s = reopened->Snapshot();
  EXPECT_EQ(s.hits, 5u);
  EXPECT_EQ(s.mmap_serves, 5u);
  EXPECT_EQ(s.pread_serves, 0u);

  // The serve-path split is visible to the serving layer's stats JSON.
  std::string json = CacheTierStatsToJson(nullptr, reopened.get());
  EXPECT_NE(json.find("\"mmap_serves\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pread_serves\":0"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

TEST(PersistentCache, TornTailGarbageTruncatedOnReopen) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 3; ++i) planned.push_back(PlanNth(i));
  { // populate and close cleanly
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
  }
  std::vector<std::string> segments = ListSegments(dir.path());
  ASSERT_EQ(segments.size(), 1u);
  off_t clean_size = FileSize(segments[0]);

  // Crash mid-append: garbage after the last complete record.
  AppendBytes(segments[0], std::string(20, '\x5a'));
  {
    auto cache = OpenOrDie(opts);
    PersistentCacheStats s = cache->Snapshot();
    EXPECT_GE(s.torn_records_dropped, 1u);
    EXPECT_EQ(s.records, 3u);  // only the torn bytes are gone
    for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
  }
  // Reopen truncated the file back to the last good record.
  EXPECT_EQ(FileSize(segments[0]), clean_size);
}

TEST(PersistentCache, TornTailMidRecordDropsOnlyTornRecord) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 3; ++i) planned.push_back(PlanNth(i));
  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
  }
  std::vector<std::string> segments = ListSegments(dir.path());
  ASSERT_EQ(segments.size(), 1u);

  // Crash mid-append of the LAST record: cut into its blob bytes.
  int fd = open(segments[0].c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(ftruncate(fd, FileSize(segments[0]) - 5), 0);
  close(fd);

  auto cache = OpenOrDie(opts);
  PersistentCacheStats s = cache->Snapshot();
  EXPECT_GE(s.torn_records_dropped, 1u);
  EXPECT_EQ(s.records, 2u);
  ExpectServes(cache.get(), planned[0]);
  ExpectServes(cache.get(), planned[1]);
  OptimizeResult out;
  EXPECT_FALSE(cache->Get(planned[2].fp, &out));  // the torn record

  // The truncated log is a clean log: appends resume.
  cache->Put(planned[2].fp, planned[2].result);
  ExpectServes(cache.get(), planned[2]);
}

TEST(PersistentCache, MidHistoryCorruptionServesPrefixAndKeepsAppending) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;
  opts.max_segment_bytes = 1;  // one record per segment

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 4; ++i) planned.push_back(PlanNth(i));
  {
    auto cache = OpenOrDie(opts);
    for (const PlannedQuery& p : planned) cache->Put(p.fp, p.result);
  }
  std::vector<std::string> segments = ListSegments(dir.path());
  ASSERT_GE(segments.size(), 4u);

  // Corrupt a NON-newest segment (history, not a torn tail): its record
  // is dropped, but the file is not truncated — the damage is preserved
  // for inspection and the segment is retired from appends.
  const std::string& victim = segments[1];
  off_t victim_size = FileSize(victim);
  FlipByteAt(victim, victim_size - 1);

  auto cache = OpenOrDie(opts);
  PersistentCacheStats s = cache->Snapshot();
  EXPECT_EQ(s.records, 3u);
  EXPECT_GE(s.torn_records_dropped, 1u);
  EXPECT_EQ(FileSize(victim), victim_size);  // history never truncated
  ExpectServes(cache.get(), planned[0]);
  OptimizeResult out;
  EXPECT_FALSE(cache->Get(planned[1].fp, &out));
  ExpectServes(cache.get(), planned[2]);
  ExpectServes(cache.get(), planned[3]);

  // The tier still accepts new work after losing history.
  cache->Put(planned[1].fp, planned[1].result);
  ExpectServes(cache.get(), planned[1]);
}

TEST(PersistentCache, VersionSkewedSegmentSkippedAndPreserved) {
  TempDir dir;

  // A segment written by a future format version: plausible header,
  // unknowable payload.
  std::string future;
  PutFixed32(&future, 0x47455345u);      // segment magic "ESEG"
  PutFixed32(&future, 99u);              // future segment version
  future += std::string(64, '\x7f');     // bytes we must not parse
  std::string skewed = dir.path() + "/segment-000000.log";
  {
    int fd = open(skewed.c_str(), O_CREAT | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(write(fd, future.data(), future.size()),
              static_cast<ssize_t>(future.size()));
    close(fd);
  }

  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = false;
  PlannedQuery p = PlanNth(0);
  {
    auto cache = OpenOrDie(opts);
    PersistentCacheStats s = cache->Snapshot();
    EXPECT_EQ(s.skipped_segments, 1u);
    EXPECT_EQ(s.records, 0u);
    // Appends go to a NEW segment; the foreign one is never written.
    cache->Put(p.fp, p.result);
    ExpectServes(cache.get(), p);
  }
  // The skewed segment is byte-identical: never parsed, truncated, or
  // deleted (its writer may still own it).
  EXPECT_EQ(ReadFile(skewed), future);
  EXPECT_GE(ListSegments(dir.path()).size(), 2u);

  auto reopened = OpenOrDie(opts);
  EXPECT_EQ(reopened->Snapshot().skipped_segments, 1u);
  ExpectServes(reopened.get(), p);
}

// ---------------------------------------------------------------------------
// Two processes.
// ---------------------------------------------------------------------------

TEST(PersistentCache, TwoProcessWriterThenColdReader) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = true;  // the production path, writer thread and all

  // Plan in the parent too: the reader-side expectation (the child runs
  // the same deterministic optimizer).
  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 3; ++i) planned.push_back(PlanNth(i));

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: populate the directory, destructor flushes, then _exit —
    // no gtest teardown, no shared stdio replay.
    int status = 0;
    {
      std::string error;
      auto cache = PersistentPlanCache::Open(opts, &error);
      if (cache == nullptr) status = 2;
      for (int i = 0; cache != nullptr && i < 3; ++i) {
        PlannedQuery p = PlanNth(i);
        if (p.result.plan == nullptr) status = 3;
        cache->Put(p.fp, p.result);
      }
    }
    _exit(status);
  }

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  // Parent: cold open of the child's directory.
  auto cache = OpenOrDie(opts);
  EXPECT_EQ(cache->Snapshot().records, 3u);
  for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
}

// ---------------------------------------------------------------------------
// Tier coherence through OptimizeThroughCache.
// ---------------------------------------------------------------------------

TEST(PersistentCache, TierTransitionsFreshMemoryDisk) {
  TempDir dir;
  PersistentCacheOptions popts;
  popts.directory = dir.path();
  popts.write_behind = false;
  auto l2 = OpenOrDie(popts);

  Query query = NthQuery(1);
  OptimizerOptions options;
  options.persistent_cache = l2.get();

  double fresh_cost;
  {
    PlanCache l1;
    options.plan_cache = &l1;

    // Tier 0: fresh plan, lands in both tiers.
    OptimizeResult r0 = OptimizeAdaptive(query, options);
    ASSERT_NE(r0.plan, nullptr);
    EXPECT_FALSE(r0.stats.cache_hit);
    EXPECT_EQ(r0.stats.cache_tier, 0);
    fresh_cost = r0.plan->cost;

    // Tier 1: the memory cache answers first.
    OptimizeResult r1 = OptimizeAdaptive(query, options);
    EXPECT_TRUE(r1.stats.cache_hit);
    EXPECT_EQ(r1.stats.cache_tier, 1);
    EXPECT_EQ(r1.plan->cost, fresh_cost);
    EXPECT_EQ(l2->Snapshot().puts, 1u);
  }

  // "Restart": fresh memory tier, same disk tier.
  PlanCache l1_cold;
  options.plan_cache = &l1_cold;

  OptimizeResult r2 = OptimizeAdaptive(query, options);
  EXPECT_TRUE(r2.stats.cache_hit);
  EXPECT_EQ(r2.stats.cache_tier, 2);
  ASSERT_NE(r2.plan, nullptr);
  EXPECT_EQ(r2.plan->cost, fresh_cost);

  // The disk hit was promoted: the next probe is a memory hit.
  OptimizeResult r3 = OptimizeAdaptive(query, options);
  EXPECT_TRUE(r3.stats.cache_hit);
  EXPECT_EQ(r3.stats.cache_tier, 1);
  EXPECT_EQ(l1_cold.Snapshot().inserts, 1u);

  // Disk-only operation (no memory tier at all) also serves.
  options.plan_cache = nullptr;
  OptimizeResult r4 = OptimizeAdaptive(query, options);
  EXPECT_TRUE(r4.stats.cache_hit);
  EXPECT_EQ(r4.stats.cache_tier, 2);
  EXPECT_EQ(r4.plan->cost, fresh_cost);
}

TEST(PersistentCache, TierStatsJson) {
  TempDir dir;
  PersistentCacheOptions popts;
  popts.directory = dir.path();
  popts.write_behind = false;
  auto l2 = OpenOrDie(popts);
  PlanCache l1;

  std::string json = CacheTierStatsToJson(&l1, l2.get());
  EXPECT_NE(json.find("\"l1\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"l2\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"records\":"), std::string::npos) << json;
  EXPECT_EQ(CacheTierStatsToJson(nullptr, nullptr), "{\"l1\":null,\"l2\":null}");
}

// ---------------------------------------------------------------------------
// Concurrency (runs under the TSan CI leg).
// ---------------------------------------------------------------------------

TEST(PersistentCache, ConcurrentGetPut) {
  TempDir dir;
  PersistentCacheOptions opts;
  opts.directory = dir.path();
  opts.write_behind = true;

  std::vector<PlannedQuery> planned;
  for (int i = 0; i < 8; ++i) planned.push_back(PlanNth(i));
  auto cache = OpenOrDie(opts);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &planned, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
      for (int iter = 0; iter < 200; ++iter) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const PlannedQuery& p = planned[(rng >> 33) % planned.size()];
        if ((rng >> 16) & 1) {
          cache->Put(p.fp, p.result);
        } else {
          OptimizeResult out;
          if (cache->Get(p.fp, &out) && out.plan != nullptr) {
            // Served bytes must always be one of the stored plans.
            if (out.plan->cost != p.result.plan->cost) std::abort();
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cache->Flush();

  // Duplicate suppression held under contention: at most one record per
  // distinct key.
  PersistentCacheStats s = cache->Snapshot();
  EXPECT_LE(s.records, planned.size());
  for (const PlannedQuery& p : planned) ExpectServes(cache.get(), p);
}

}  // namespace
}  // namespace eadp
