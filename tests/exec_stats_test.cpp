// Execution statistics: estimated-vs-actual row collection.

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/query_generator.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

TEST(ExecStats, CollectsOneEntryPerPlanNode) {
  GeneratorOptions gen;
  gen.num_relations = 4;
  Query q = GenerateRandomQuery(gen, 21);
  Database db = GenerateDatabase(q, 22);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  ExecutionStats stats;
  Table result = ExecutePlan(r.plan, q, db, &stats);
  EXPECT_EQ(static_cast<int>(stats.nodes.size()), r.plan->NodeCount());
  // Root is last (post-order) and reports the final row count.
  ASSERT_FALSE(stats.nodes.empty());
  EXPECT_EQ(stats.nodes.back().actual, result.NumRows());
}

TEST(ExecStats, ActualCoutExcludesScansAndMaps) {
  Query q = MakeTpchEx();
  Database db = MakeExDatabase(q, 1, 5);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  ExecutionStats stats;
  ExecutePlan(r.plan, q, db, &stats);
  double manual = 0;
  for (const auto& n : stats.nodes) {
    if (n.label.rfind("scan", 0) == 0) continue;
    if (n.label.rfind("final-map", 0) == 0) continue;
    manual += static_cast<double>(n.actual);
  }
  EXPECT_DOUBLE_EQ(stats.ActualCout(), manual);
  EXPECT_GT(stats.ActualCout(), 0);
}

TEST(ExecStats, EagerPlanHasSmallerActualCoutOnEx) {
  // The headline claim, measured on real rows rather than estimates.
  Query q = MakeTpchEx();
  Database db = MakeExDatabase(q, 4, 9);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult eager = Optimize(q, opt);
  opt.algorithm = Algorithm::kDphyp;
  OptimizeResult lazy = Optimize(q, opt);
  ExecutionStats eager_stats;
  ExecutionStats lazy_stats;
  ExecutePlan(eager.plan, q, db, &eager_stats);
  ExecutePlan(lazy.plan, q, db, &lazy_stats);
  EXPECT_LT(eager_stats.ActualCout() * 10, lazy_stats.ActualCout());
}

TEST(ExecStats, EstimatesInTheRightBallparkForTpchMini) {
  // With consistent stats (mini db mirrors the catalog shape), estimates
  // scaled by the data fraction should be within a couple of orders of
  // magnitude of the actual counts — a smoke test for the estimator, not a
  // precision claim.
  Query q = MakeTpchQ3();
  double fraction = 1e-3;
  Database db = MakeTpchMiniDatabase(q, fraction, 13);
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kDphyp;
  OptimizeResult r = Optimize(q, opt);
  ExecutionStats stats;
  ExecutePlan(r.plan, q, db, &stats);
  for (const auto& n : stats.nodes) {
    if (n.label.rfind("scan", 0) == 0 && n.estimated > 100) {
      double scaled = n.estimated * fraction;
      EXPECT_GT(static_cast<double>(n.actual), scaled / 10) << n.label;
      EXPECT_LT(static_cast<double>(n.actual), scaled * 10 + 10) << n.label;
    }
  }
}

}  // namespace
}  // namespace eadp
